"""The telemetry-summary contract (:data:`TELEMETRY_SCHEMA`).

:meth:`repro.obs.recorder.Recorder.summary` emits one JSON document per
run: event totals, counters, gauges, fixed-bucket histograms and per-span
timing aggregates.  This module owns that document's schema, a validator
built on the shared :mod:`repro.obs.schema` walker, read/write helpers
that refuse malformed documents, merging for fleet shards, and a plain
text renderer for the experiments runner.

``scripts/check.sh`` validates the committed golden telemetry snapshot --
and a freshly produced summary -- on every run, so schema drift fails CI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TelemetryError
from repro.obs.schema import cross_check, validate_document

_STAT_ENTRY = {
    "type": "object",
    "required": ["count", "total_ms", "max_ms"],
    "additionalProperties": False,
    "properties": {
        "count": {"type": "integer", "minimum": 1},
        "total_ms": {"type": "number", "minimum": 0},
        "max_ms": {"type": "number", "minimum": 0},
    },
}

_HISTOGRAM_ENTRY = {
    "type": "object",
    "required": ["boundaries", "counts", "total", "sum"],
    "additionalProperties": False,
    "properties": {
        "boundaries": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array",
                   "items": {"type": "integer", "minimum": 0}},
        "total": {"type": "integer", "minimum": 0},
        "sum": {"type": "number"},
    },
}

TELEMETRY_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro run telemetry summary",
    "type": "object",
    "required": ["schema_version", "events", "counters", "gauges",
                 "histograms", "spans"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer", "enum": [1]},
        "events": {
            "type": "object",
            "required": ["total", "logical", "timing", "by_kind"],
            "additionalProperties": False,
            "properties": {
                "total": {"type": "integer", "minimum": 0},
                "logical": {"type": "integer", "minimum": 0},
                "timing": {"type": "integer", "minimum": 0},
                "by_kind": {"type": "object", "properties": {},
                            "additionalProperties": {
                                "type": "integer", "minimum": 1}},
            },
        },
        "counters": {"type": "object", "properties": {},
                     "additionalProperties": {"type": "number",
                                              "minimum": 0}},
        "gauges": {"type": "object", "properties": {},
                   "additionalProperties": {"type": "number"}},
        "histograms": {"type": "object", "properties": {},
                       "additionalProperties": _HISTOGRAM_ENTRY},
        "spans": {"type": "object", "properties": {},
                  "additionalProperties": _STAT_ENTRY},
    },
}


def validate_telemetry(summary: object) -> None:
    """Raise :class:`TelemetryError` unless ``summary`` satisfies
    :data:`TELEMETRY_SCHEMA`; cross-checks with the ``jsonschema``
    package when available."""
    validate_document(summary, TELEMETRY_SCHEMA, "telemetry summary",
                      TelemetryError)
    cross_check(summary, TELEMETRY_SCHEMA, "telemetry summary",
                TelemetryError)
    # internal consistency the schema alone cannot express
    events = summary["events"]
    if events["total"] != events["logical"] + events["timing"]:
        raise TelemetryError(
            f"telemetry summary inconsistent: total {events['total']} != "
            f"logical {events['logical']} + timing {events['timing']}")
    if sum(events["by_kind"].values()) != events["total"]:
        raise TelemetryError(
            "telemetry summary inconsistent: by_kind counts do not sum "
            "to the event total")
    for name, histogram in summary["histograms"].items():
        if len(histogram["counts"]) != len(histogram["boundaries"]) + 1:
            raise TelemetryError(
                f"histogram {name!r} must have len(boundaries)+1 buckets")
        if sum(histogram["counts"]) != histogram["total"]:
            raise TelemetryError(
                f"histogram {name!r} bucket counts do not sum to total")


def write_telemetry(path: str, summary: dict) -> None:
    """Validate ``summary`` and write it to ``path`` as formatted JSON."""
    validate_telemetry(summary)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_telemetry(path: str) -> dict:
    """Read and validate a summary written by :func:`write_telemetry`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            summary = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TelemetryError(
                f"telemetry summary {path} is not valid JSON: {exc}"
            ) from exc
    validate_telemetry(summary)
    return summary


def merge_telemetry(summaries: Sequence[dict]) -> dict:
    """Fold per-shard summaries into one fleet-level summary.

    Counters, event tallies, span aggregates and histogram buckets add;
    gauges keep the last shard's value (they are point-in-time readings);
    histograms must agree on boundaries.  Merging is order-dependent only
    for gauges, and the fleet merges shards in submission order, so the
    merged document is deterministic.
    """
    merged: dict = {
        "schema_version": 1,
        "events": {"total": 0, "logical": 0, "timing": 0, "by_kind": {}},
        "counters": {}, "gauges": {}, "histograms": {}, "spans": {},
    }
    for summary in summaries:
        validate_telemetry(summary)
        events = merged["events"]
        for key in ("total", "logical", "timing"):
            events[key] += summary["events"][key]
        for kind, count in summary["events"]["by_kind"].items():
            events["by_kind"][kind] = events["by_kind"].get(kind, 0) + count
        for name, value in summary["counters"].items():
            merged["counters"][name] = (
                merged["counters"].get(name, 0) + value)
        merged["gauges"].update(summary["gauges"])
        for name, histogram in summary["histograms"].items():
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = {
                    "boundaries": list(histogram["boundaries"]),
                    "counts": list(histogram["counts"]),
                    "total": histogram["total"],
                    "sum": histogram["sum"]}
                continue
            if into["boundaries"] != list(histogram["boundaries"]):
                raise TelemetryError(
                    f"cannot merge histogram {name!r}: boundary mismatch")
            into["counts"] = [a + b for a, b in zip(into["counts"],
                                                    histogram["counts"])]
            into["total"] += histogram["total"]
            into["sum"] += histogram["sum"]
        for name, stats in summary["spans"].items():
            into = merged["spans"].get(name)
            if into is None:
                merged["spans"][name] = dict(stats)
            else:
                into["count"] += stats["count"]
                into["total_ms"] += stats["total_ms"]
                into["max_ms"] = max(into["max_ms"], stats["max_ms"])
    merged["events"]["by_kind"] = dict(
        sorted(merged["events"]["by_kind"].items()))
    for key in ("counters", "gauges", "histograms", "spans"):
        merged[key] = dict(sorted(merged[key].items()))
    validate_telemetry(merged)
    return merged


def format_summary(summary: dict,
                   title: str = "telemetry summary") -> str:
    """Render a summary as an aligned text report (spans by total time,
    then counters), for the experiments runner and examples."""
    lines: List[str] = [title, "=" * len(title)]
    spans: Dict[str, dict] = summary.get("spans", {})
    if spans:
        ordered: List[Tuple[str, dict]] = sorted(
            spans.items(), key=lambda item: (-item[1]["total_ms"], item[0]))
        name_width = max(len("span"), max(len(n) for n, _ in ordered))
        lines.append(f"{'span':<{name_width}}  {'count':>7}  "
                     f"{'total_ms':>12}  {'max_ms':>10}")
        for name, stats in ordered:
            lines.append(
                f"{name:<{name_width}}  {stats['count']:>7d}  "
                f"{stats['total_ms']:>12.3f}  {stats['max_ms']:>10.3f}")
    counters = summary.get("counters", {})
    if counters:
        lines.append("")
        name_width = max(len("counter"), max(len(n) for n in counters))
        lines.append(f"{'counter':<{name_width}}  {'value':>12}")
        for name in sorted(counters):
            value = counters[name]
            rendered = (f"{int(value):>12d}" if float(value).is_integer()
                        else f"{value:>12.3f}")
            lines.append(f"{name:<{name_width}}  {rendered}")
    events = summary.get("events")
    if events is not None:
        lines.append("")
        lines.append(f"events: {events['total']} "
                     f"({events['logical']} logical, "
                     f"{events['timing']} timing)")
    return "\n".join(lines)
