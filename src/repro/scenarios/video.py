"""Pixel backend: compile a :class:`DriftScript` to a drifting
:class:`~repro.video.stream.VideoStream`.

The script's sigma-unit factor values are normalized by
``script.feature_scale`` and mapped onto the addressable
:class:`~repro.video.scenes.FactorAxes`: lighting blends the base
condition toward the lit one, geometry interpolates the camera toward its
displaced placement, density shifts the objects-per-frame mean, noise
adds sensor noise, occlusion draws a matte occluder.

Two lowering strategies:

- **Piecewise** (the general case): one :class:`SegmentSpec` per
  constant piece of the factor trajectory.  Requires every track to be
  quantized (``steps > 0`` for ramps) -- a per-frame smooth ramp would
  otherwise explode into thousands of one-frame segments, each resetting
  the object population.
- **Transition** (single smooth gradual lighting track): lowered to the
  stream's native condition blending -- a base segment followed by a
  target segment whose leading ``transition`` frames interpolate, frame
  by frame, exactly as the track's smooth ramp prescribes.  This is the
  lowering that re-expresses the paper's slow-drift dataset
  (``make_slow_drift``) as a script, bit-identically.

Imports only :mod:`repro.video` submodules (scenes / stream / renderer),
never ``repro.video.datasets`` -- the datasets module builds *on* this
compiler, so the dependency must point one way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ScenarioError
from repro.scenarios.compile import observed_events
from repro.scenarios.script import DriftEvent, DriftScript, FACTORS
from repro.video.renderer import Renderer
from repro.video.scenes import FactorAxes, SegmentSpec
from repro.video.stream import VideoStream


@dataclass(frozen=True)
class VideoProfile:
    """Rendering parameters orthogonal to the drift factors."""

    objects_mean: float = 19.2
    objects_std: float = 4.7
    bus_fraction: float = 0.2
    frame_size: int = 32

    def __post_init__(self) -> None:
        if self.objects_mean <= 0:
            raise ScenarioError(
                f"objects_mean must be positive, got {self.objects_mean}")
        if self.frame_size < 8:
            raise ScenarioError(
                f"frame_size must be >= 8, got {self.frame_size}")


@dataclass(frozen=True)
class CompiledVideoStream:
    """The pixel-space compilation of one script.

    ``events`` is derived by *scanning* the factor trajectory
    (:func:`~repro.scenarios.compile.observed_events`), independently of
    the declarative :meth:`DriftScript.events` the feature backend
    carries -- the property suite cross-checks the two.
    """

    name: str
    stream: VideoStream
    segments: Tuple[SegmentSpec, ...]
    events: Tuple[DriftEvent, ...]

    def onsets(self) -> Tuple[int, ...]:
        return tuple(sorted({event.frame for event in self.events}))


def _axis_values(script: DriftScript, axes: FactorAxes,
                 values: Dict[str, float]) -> Dict[str, float]:
    """Normalize sigma-unit factor values onto the [0, 1] factor axes."""
    scale = script.feature_scale
    out = {}
    for factor in FACTORS:
        normalized = values[factor] / scale
        bound = (-1.0, 1.0) if factor == "density" else (0.0, 1.0)
        if not bound[0] <= normalized <= bound[1]:
            raise ScenarioError(
                f"factor {factor!r} value {values[factor]} maps outside "
                f"the {bound} axis range at feature_scale {scale}; lower "
                f"the magnitude or raise feature_scale")
        out[factor] = normalized
    return out


def _segment(script: DriftScript, axes: FactorAxes, profile: VideoProfile,
             name: str, length: int, values: Dict[str, float],
             transition: int = 0) -> SegmentSpec:
    axis = _axis_values(script, axes, values)
    condition = axes.condition_at(lighting=axis["lighting"],
                                  noise=axis["noise"],
                                  occlusion=axis["occlusion"])
    return SegmentSpec(
        name=name,
        condition=condition,
        angle=axes.angle_at(axis["geometry"]),
        length=length,
        objects_mean=max(profile.objects_mean
                         + axes.density_shift(axis["density"]), 0.5),
        objects_std=profile.objects_std,
        bus_fraction=profile.bus_fraction,
        transition=transition)


def _piece_name(axes: FactorAxes, values: Dict[str, float],
                used: Dict[str, int]) -> str:
    active = [factor for factor in FACTORS if values[factor] != 0.0]
    base = "+".join(active) if active else axes.base_condition.name
    count = used.get(base, 0)
    used[base] = count + 1
    return base if count == 0 else f"{base}.{count}"


def _smooth_tracks(script: DriftScript):
    return [track for track in script.tracks
            if track.kind == "gradual" and track.steps == 0]


def _compile_transition(script: DriftScript, axes: FactorAxes,
                        profile: VideoProfile) -> List[SegmentSpec]:
    """Lower a single smooth lighting ramp onto stream-native blending."""
    track = script.tracks[0]
    if track.onset == 0:
        raise ScenarioError(
            "a smooth lighting ramp needs a leading baseline segment "
            "(onset > 0) to blend from")
    if track.onset + track.duration > script.frames:
        raise ScenarioError(
            f"smooth ramp (onset {track.onset} + duration "
            f"{track.duration}) overruns the {script.frames}-frame script")
    baseline = {factor: 0.0 for factor in FACTORS}
    lit = dict(baseline, lighting=track.magnitude)
    pre = _segment(script, axes, profile, axes.base_condition.name,
                   track.onset, baseline)
    post = _segment(script, axes, profile, None, script.frames - track.onset,
                    lit, transition=track.duration)
    # name the target segment after its condition endpoint ("night"), the
    # vocabulary the model registry and fig4 experiment key on
    post = SegmentSpec(
        name=post.condition.name, condition=post.condition,
        angle=post.angle, length=post.length,
        objects_mean=post.objects_mean, objects_std=post.objects_std,
        bus_fraction=post.bus_fraction, transition=post.transition)
    return [pre, post]


def _compile_piecewise(script: DriftScript, axes: FactorAxes,
                       profile: VideoProfile) -> List[SegmentSpec]:
    boundaries = script.change_points() + [script.frames]
    segments: List[SegmentSpec] = []
    used: Dict[str, int] = {}
    for start, end in zip(boundaries, boundaries[1:]):
        if end <= start:
            continue
        values = script.factor_values(start)
        name = _piece_name(axes, values, used)
        segments.append(
            _segment(script, axes, profile, name, end - start, values))
    return segments


def compile_video(script: DriftScript, seed=None,
                  profile: VideoProfile = VideoProfile(),
                  axes: FactorAxes = FactorAxes()) -> CompiledVideoStream:
    """Compile ``script`` to a seeded pixel stream with ground truth."""
    smooth = _smooth_tracks(script)
    if smooth:
        if len(script.tracks) != 1 or smooth[0].factor != "lighting":
            raise ScenarioError(
                "smooth (steps == 0) ramps lower onto stream-native "
                "condition blending, which supports exactly one gradual "
                "lighting track; quantize other ramps with steps > 0")
        segments = _compile_transition(script, axes, profile)
    elif script.tracks:
        segments = _compile_piecewise(script, axes, profile)
    else:
        segments = [_segment(script, axes, profile,
                             axes.base_condition.name, script.frames,
                             {factor: 0.0 for factor in FACTORS})]
    renderer = Renderer(profile.frame_size, profile.frame_size)
    stream = VideoStream(segments, renderer=renderer, seed=seed)
    return CompiledVideoStream(
        name=script.name, stream=stream, segments=tuple(segments),
        events=observed_events(script))
