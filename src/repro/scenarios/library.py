"""Built-in drift scripts: the benchmark matrix plus operational scenarios.

Two families:

- :func:`core_scripts` re-expresses the original detector-benchmark
  matrix (abrupt, subtle, gradual, slow, stationary) as factor scripts.
  Each is a *compound* drift (all four independent factors move
  together), compiled by :func:`~repro.scenarios.compile.feature_plan`
  to exactly the ``(centre, length)`` segment lists the benchmark has
  always used -- the golden-slice tests pin this bit for bit, including
  the ``--quick`` halving (``DriftScript.scaled(0.5)``).
- :func:`operational_scripts` adds the regimes real deployments hit
  (the cups-counter failure modes; see "Open-Source Drift Detection
  Tools in Action" in PAPERS.md): single-factor drifts for attribution
  (lighting-only, geometry-only), recurring drift, an adversarially slow
  quadratic ramp, camera displacement followed by recalibration, and a
  transient occluder entangling appearance with object density.

:func:`builtin_scripts` merges the two, and is what the extended
benchmark matrix, the ``scenarios-smoke`` CI gate and the docs table
iterate over.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ScenarioError
from repro.scenarios.script import DriftScript, FactorTrack, compound

#: Temporal layout shared by the matrix: every drifting script leaves the
#: reference distribution at frame 120 (the false-alarm exposure window).
ONSET = 120


def core_scripts() -> Dict[str, DriftScript]:
    """The legacy benchmark matrix as factor scripts (order preserved)."""
    scripts = (
        compound("abrupt", 240, "abrupt", ONSET, 6.0),
        compound("subtle", 240, "abrupt", ONSET, 2.5),
        compound("gradual", 320, "gradual", ONSET, 6.0,
                 duration=160, steps=4),
        compound("slow", 400, "gradual", ONSET, 3.0,
                 duration=240, steps=4),
        DriftScript("stationary", 240),
    )
    return {script.name: script for script in scripts}


def operational_scripts() -> Dict[str, DriftScript]:
    """The operational regimes, keyed by scenario name."""
    scripts = (
        # single-factor drifts: ground truth for per-factor attribution
        DriftScript("lighting_only", 240, (
            FactorTrack("lighting", "abrupt", ONSET, 6.0),)),
        DriftScript("geometry_only", 240, (
            FactorTrack("geometry", "abrupt", ONSET, 6.0),)),
        # recurring: three compound episodes, 40 frames on / 40 off
        compound("recurring", 400, "recurring", ONSET, 6.0,
                 duration=40, period=80, recurrences=3),
        # adversarially slow: a quantized quadratic ramp whose early
        # risers stay far below any detection threshold
        compound("adversarial_slow", 400, "adversarial_slow", ONSET, 3.0,
                 duration=240, steps=8),
        # a knocked camera holds its displaced geometry for 120 frames,
        # then recalibration restores the baseline
        DriftScript("camera_displacement", 320, (
            FactorTrack("geometry", "camera_displacement", ONSET, 6.0,
                        recovery=120),)),
        # a matte occluder: entangles appearance (lighting dims) with
        # object density for 80 frames, then is removed
        DriftScript("occlusion", 280, (
            FactorTrack("occlusion", "occlusion", ONSET, 6.0,
                        duration=80),)),
    )
    return {script.name: script for script in scripts}


def builtin_scripts() -> Dict[str, DriftScript]:
    """Every built-in script: the core matrix then the operational set."""
    scripts = core_scripts()
    scripts.update(operational_scripts())
    return scripts


def get_script(name: str) -> DriftScript:
    """Look up one built-in script by name."""
    scripts = builtin_scripts()
    if name not in scripts:
        raise ScenarioError(
            f"unknown script {name!r}; built-ins: {sorted(scripts)}")
    return scripts[name]


def slow_drift_script(frames: int, transition: int,
                      feature_scale: float = 6.0) -> DriftScript:
    """The paper's Section 6.1.3 slow-drift stream as a script.

    A single smooth (``steps == 0``) gradual lighting ramp starting at
    ``frames // 2``: the pixel backend lowers it onto stream-native
    condition blending, reproducing ``make_slow_drift`` bit for bit
    (day for the first half, then ``transition`` frames blending into
    night).  ``magnitude == feature_scale`` drives lighting all the way
    to the lit endpoint.
    """
    if frames < 4 or frames % 2:
        raise ScenarioError(
            f"slow-drift scripts need an even frame count >= 4, "
            f"got {frames}")
    onset = frames // 2
    if not 0 < transition <= onset:
        raise ScenarioError(
            f"transition must be in (0, {onset}], got {transition}")
    return DriftScript(
        name="slow_drift", frames=frames,
        tracks=(FactorTrack("lighting", "gradual", onset, feature_scale,
                            duration=transition),),
        feature_scale=feature_scale)
