"""Declarative drift scripting: one script, three backends.

A :class:`DriftScript` declares *what* drifts (typed factor tracks over
lighting, camera geometry, object density, sensor noise, occlusion),
*how* (abrupt, gradual, recurring, adversarially slow, camera
displacement with recalibration, transient occlusion) and carries
structured ground truth (:class:`DriftEvent`).  The same script compiles
to:

- gaussian feature streams for the detector benchmarks
  (:func:`compile_features`);
- pixel video streams through :mod:`repro.video`
  (:func:`compile_video`);
- drift-coupled serving workload profiles (:func:`compile_workload`).

This package sits *below* the consumers: ``repro.testing``,
``repro.detectors`` and ``repro.video.datasets`` build on it, and the
layer lint forbids it from importing ``repro.parallel``, ``repro.serve``
or ``repro.experiments``.
"""

from repro.scenarios.compile import (
    FACTOR_DIMS,
    FEATURE_DIM,
    CompiledFeatureStream,
    attribute_factors,
    compile_features,
    feature_plan,
    generate_plan,
    observed_events,
)
from repro.scenarios.library import (
    ONSET,
    builtin_scripts,
    core_scripts,
    get_script,
    operational_scripts,
    slow_drift_script,
)
from repro.scenarios.report import (
    SCENARIO_SCHEMA,
    SCENARIO_SCHEMA_VERSION,
    load_scenario_document,
    script_document,
    validate_scenario_document,
    write_scenario_document,
)
from repro.scenarios.script import (
    EVENT_KINDS,
    FACTORS,
    KINDS,
    DriftEvent,
    DriftScript,
    FactorTrack,
    compound,
)
from repro.scenarios.video import (
    CompiledVideoStream,
    VideoProfile,
    compile_video,
)
from repro.scenarios.workload import (
    CompiledWorkload,
    WorkloadCoupling,
    compile_workload,
    drive_at,
)

__all__ = [
    "CompiledFeatureStream",
    "CompiledVideoStream",
    "CompiledWorkload",
    "DriftEvent",
    "DriftScript",
    "EVENT_KINDS",
    "FACTORS",
    "FACTOR_DIMS",
    "FEATURE_DIM",
    "FactorTrack",
    "KINDS",
    "ONSET",
    "SCENARIO_SCHEMA",
    "SCENARIO_SCHEMA_VERSION",
    "VideoProfile",
    "WorkloadCoupling",
    "attribute_factors",
    "builtin_scripts",
    "compile_features",
    "compile_video",
    "compile_workload",
    "compound",
    "core_scripts",
    "drive_at",
    "feature_plan",
    "generate_plan",
    "get_script",
    "load_scenario_document",
    "observed_events",
    "operational_scripts",
    "script_document",
    "slow_drift_script",
    "validate_scenario_document",
    "write_scenario_document",
]
