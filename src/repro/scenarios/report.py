"""The machine-readable scenario contract (``SCENARIO_SCHEMA``).

Every :class:`~repro.scenarios.script.DriftScript` serializes to one
JSON document via :func:`script_document`: the factor tracks, the
derived ground-truth event log, and the drifted-factor summary.  The
``scenarios-smoke`` CI gate compiles every built-in script to all three
backends and validates this document, so a script whose declarative
parameters stop matching its compiled ground truth fails CI rather than
silently mislabeling a benchmark.

Validated with the shared dependency-free :mod:`repro.obs.schema`
walker (plus a ``jsonschema`` cross-check when that package is
importable), like every other report contract in the repo.  This is the
first contract to use the walker's ``minItems`` keyword: an event must
name at least one moved factor, and a drifting script's event log must
not be empty.
"""

from __future__ import annotations

import json

from repro.errors import ScenarioError
from repro.obs.schema import cross_check, validate_document
from repro.scenarios.script import (
    EVENT_KINDS,
    FACTORS,
    KINDS,
    DriftScript,
)

SCENARIO_SCHEMA_VERSION = 1

_TRACK_ENTRY = {
    "type": "object",
    "required": ["factor", "kind", "onset", "magnitude"],
    "additionalProperties": False,
    "properties": {
        "factor": {"type": "string", "enum": list(FACTORS)},
        "kind": {"type": "string", "enum": list(KINDS)},
        "onset": {"type": "integer", "minimum": 0},
        "magnitude": {"type": "number"},
        "duration": {"type": "integer", "minimum": 0},
        "period": {"type": "integer", "minimum": 0},
        "recurrences": {"type": "integer", "minimum": 0},
        "recovery": {"type": "integer", "minimum": 0},
        "steps": {"type": "integer", "minimum": 0},
    },
}

_EVENT_ENTRY = {
    "type": "object",
    "required": ["frame", "factors", "kind", "magnitude"],
    "additionalProperties": False,
    "properties": {
        "frame": {"type": "integer", "minimum": 0},
        "factors": {"type": "array", "minItems": 1,
                    "items": {"type": "string", "enum": list(FACTORS)}},
        "kind": {"type": "string", "enum": list(EVENT_KINDS)},
        "magnitude": {"type": "number"},
    },
}

SCENARIO_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro drift scenario (factor-controlled script)",
    "type": "object",
    "required": ["schema_version", "name", "frames", "feature_scale",
                 "stationary", "factors", "tracks", "events"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer",
                           "enum": [SCENARIO_SCHEMA_VERSION]},
        "name": {"type": "string"},
        "frames": {"type": "integer", "exclusiveMinimum": 0},
        "feature_scale": {"type": "number", "exclusiveMinimum": 0},
        "stationary": {"type": "boolean"},
        "factors": {"type": "array",
                    "items": {"type": "string", "enum": list(FACTORS)}},
        "tracks": {"type": "array", "items": _TRACK_ENTRY},
        "events": {"type": "array", "items": _EVENT_ENTRY},
    },
}


def script_document(script: DriftScript) -> dict:
    """Serialize ``script`` (and its derived ground truth) to the
    ``SCENARIO_SCHEMA`` shape."""
    document = {
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "name": script.name,
        "frames": script.frames,
        "feature_scale": script.feature_scale,
        "stationary": script.stationary,
        "factors": list(script.drifted_factors()),
        "tracks": [{
            "factor": track.factor,
            "kind": track.kind,
            "onset": track.onset,
            "magnitude": track.magnitude,
            "duration": track.duration,
            "period": track.period,
            "recurrences": track.recurrences,
            "recovery": track.recovery,
            "steps": track.steps,
        } for track in script.tracks],
        "events": [{
            "frame": event.frame,
            "factors": list(event.factors),
            "kind": event.kind,
            "magnitude": event.magnitude,
        } for event in script.events()],
    }
    # a drifting script with no events would mislabel every benchmark
    # built on it; make the walker reject the document outright
    if not script.stationary:
        document_events = document["events"]
        if not document_events:
            raise ScenarioError(
                f"script {script.name!r} drifts but derives no events")
    return document


def validate_scenario_document(document: object) -> None:
    """Raise :class:`ScenarioError` unless ``document`` satisfies
    :data:`SCENARIO_SCHEMA`; cross-checks with ``jsonschema`` when
    available."""
    validate_document(document, SCENARIO_SCHEMA, "scenario document",
                      ScenarioError)
    cross_check(document, SCENARIO_SCHEMA, "scenario document",
                ScenarioError)


def write_scenario_document(path: str, document: dict) -> None:
    """Validate ``document`` and write it to ``path`` as formatted JSON."""
    validate_scenario_document(document)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_scenario_document(path: str) -> dict:
    """Read and validate a document written by
    :func:`write_scenario_document`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"scenario document {path} is not valid JSON: {exc}") from exc
    validate_scenario_document(document)
    return document
