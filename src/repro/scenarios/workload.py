"""Workload backend: compile a :class:`DriftScript` into a drift-coupled
arrival-rate profile for the serving layer.

Drift and overload are correlated in practice: the scene change that
shifts the frame distribution (rush hour, a storm, a knocked camera
being investigated) also changes how much traffic the cameras emit, so a
serving benchmark that draws arrivals independently of drift never
exercises the interaction.  :func:`compile_workload` lowers a script's
factor trajectory into a piecewise-constant rate *multiplier* over
simulated time: ``1.0`` at baseline, rising linearly with the script's
normalized drive (the largest factor displacement over
``feature_scale``) up to ``surge`` when a factor is fully driven.

The profile is a pure function of ``(script, coupling)`` -- no RNG, no
serving imports (the serving layer consumes profiles via the
``modulation`` hook of :func:`repro.serve.arrivals.generate_arrivals`;
``repro.scenarios`` never imports ``repro.serve``, the layer lint pins
the direction).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ScenarioError
from repro.scenarios.script import DriftEvent, DriftScript


@dataclass(frozen=True)
class WorkloadCoupling:
    """How strongly (and at what frame rate) drift drives arrivals.

    ``fps`` maps script frames onto simulated milliseconds (frame ``f``
    covers ``[f, f + 1) * 1000 / fps``); ``surge`` is the rate
    multiplier while a factor is fully driven; ``baseline`` the
    multiplier while the script sits at its reference distribution.
    """

    fps: float = 30.0
    surge: float = 2.5
    baseline: float = 1.0

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ScenarioError(f"fps must be positive, got {self.fps}")
        if self.baseline <= 0:
            raise ScenarioError(
                f"baseline must be positive, got {self.baseline}")
        if self.surge < self.baseline:
            raise ScenarioError(
                f"surge must be >= baseline, got surge={self.surge} "
                f"baseline={self.baseline}")


@dataclass(frozen=True)
class CompiledWorkload:
    """The workload compilation of one script: a piecewise rate profile.

    ``pieces`` is ``(start_ms, multiplier)`` per constant piece, sorted
    by start; the final piece's multiplier holds beyond the script's
    horizon (a displaced camera stays displaced until someone fixes it).
    """

    name: str
    coupling: WorkloadCoupling
    pieces: Tuple[Tuple[float, float], ...]
    events: Tuple[DriftEvent, ...]

    def multiplier_at(self, t_ms: float) -> float:
        """The arrival-rate multiplier at simulated time ``t_ms``."""
        if t_ms < 0:
            return self.coupling.baseline
        starts = [start for start, _ in self.pieces]
        return self.pieces[bisect_right(starts, t_ms) - 1][1]

    def __call__(self, t_ms: float) -> float:
        """Profiles are directly usable as an arrivals ``modulation``."""
        return self.multiplier_at(t_ms)

    @property
    def peak(self) -> float:
        return max(multiplier for _, multiplier in self.pieces)


def drive_at(script: DriftScript, frame: int) -> float:
    """The script's normalized drive at ``frame``: the largest factor
    displacement as a fraction of ``feature_scale``, clamped to 1."""
    values = script.factor_values(frame)
    return min(max(abs(value) for value in values.values())
               / script.feature_scale, 1.0)


def compile_workload(
        script: DriftScript,
        coupling: WorkloadCoupling = WorkloadCoupling()) -> CompiledWorkload:
    """Compile ``script`` to a drift-coupled arrival-rate profile."""
    frame_ms = 1000.0 / coupling.fps
    span = coupling.surge - coupling.baseline
    pieces = []
    for start in script.change_points():
        multiplier = coupling.baseline + span * drive_at(script, start)
        if pieces and pieces[-1][1] == multiplier:
            continue
        pieces.append((start * frame_ms, multiplier))
    return CompiledWorkload(
        name=script.name, coupling=coupling, pieces=tuple(pieces),
        events=script.events())
