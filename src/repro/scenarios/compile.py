"""Feature-space backend: compile a :class:`DriftScript` to the gaussian
stream the detector benchmarks consume.

The compiler maps each generative factor onto a fixed set of latent
dimensions (:data:`FACTOR_DIMS`) and lowers the script's piecewise factor
trajectory into a **plan**: consecutive ``(loc, length)`` chunks, where
``loc`` is a python float when every dimension shares the same mean and a
tuple of per-dimension means otherwise.  :func:`generate_plan` then draws
``rng.normal(loc, 1.0, size=(length, dim))`` per chunk from one seeded
generator -- exactly the calls the historical
``repro.testing.gaussian_stream`` made, so a script that reproduces a
legacy ``(centre, length)`` segment list compiles to a bit-identical
stream (``repro.testing.gaussian_stream`` is now a shim over this
function).

Ground truth comes in two independent forms: :meth:`DriftScript.events`
(declarative, from the track parameters) and :func:`observed_events`
(operational, from scanning the compiled factor trajectory).  The
property suite asserts they agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ScenarioError
from repro.scenarios.script import DriftEvent, DriftScript, FACTORS

#: Latent dimensionality of the feature backend (matches
#: ``repro.testing.DIM`` -- the testing package shims onto this module,
#: never the reverse).
FEATURE_DIM = 6

#: Which latent dimensions each generative factor displaces.  The first
#: four factors partition the latent space, so a compound drift over all
#: of them shifts every dimension equally (the classic whole-distribution
#: shift of the original benchmark matrix).  ``occlusion`` deliberately
#: *overlaps* lighting and density: an occluder darkens appearance and
#: hides objects, entangling two otherwise-independent axes.
FACTOR_DIMS: Dict[str, Tuple[int, ...]] = {
    "lighting": (0, 1),
    "geometry": (2, 3),
    "density": (4,),
    "noise": (5,),
    "occlusion": (0, 4),
}

#: A plan chunk mean: one float for an isotropic chunk, else per-dim.
Loc = Union[float, Tuple[float, ...]]


@dataclass(frozen=True)
class CompiledFeatureStream:
    """The feature-space compilation of one script at one seed."""

    name: str
    seed: int
    frames: np.ndarray
    events: Tuple[DriftEvent, ...]
    plan: Tuple[Tuple[Loc, int], ...]


def dim_locs(values: Dict[str, float]) -> Tuple[float, ...]:
    """Per-dimension means for one frame's factor displacements."""
    locs = [0.0] * FEATURE_DIM
    for factor in FACTORS:
        value = values.get(factor, 0.0)
        if value:
            for dim in FACTOR_DIMS[factor]:
                locs[dim] += value
    return tuple(locs)


def feature_plan(script: DriftScript) -> Tuple[Tuple[Loc, int], ...]:
    """Lower a script to consecutive ``(loc, length)`` chunks.

    Pieces between factor change-points are constant by construction;
    consecutive pieces with equal means merge, and a uniform mean vector
    collapses to a scalar -- both so the plan (and hence the RNG call
    sequence) matches what the legacy segment lists produced.
    """
    boundaries = script.change_points() + [script.frames]
    plan: List[Tuple[Loc, int]] = []
    for start, end in zip(boundaries, boundaries[1:]):
        if end <= start:
            continue
        locs = dim_locs(script.factor_values(start))
        loc: Loc = locs[0] if len(set(locs)) == 1 else locs
        if plan and plan[-1][0] == loc:
            plan[-1] = (loc, plan[-1][1] + (end - start))
        else:
            plan.append((loc, end - start))
    return tuple(plan)


def generate_plan(seed: int, plan: Sequence[Tuple[Loc, int]],
                  dim: int = FEATURE_DIM) -> np.ndarray:
    """Draw the gaussian frames for a plan from one seeded generator.

    One ``rng.normal(loc, 1.0, size=(length, dim))`` call per chunk --
    the exact call sequence of the historical ``gaussian_stream``, which
    is what keeps legacy compilations bit-identical.
    """
    if not plan:
        raise ScenarioError("cannot generate an empty plan")
    rng = np.random.default_rng(seed)
    chunks = [rng.normal(loc, 1.0, size=(length, dim))
              for loc, length in plan]
    return np.vstack(chunks)


def compile_features(script: DriftScript, seed: int) -> CompiledFeatureStream:
    """Compile ``script`` to a seeded gaussian stream with ground truth."""
    plan = feature_plan(script)
    return CompiledFeatureStream(
        name=script.name, seed=seed,
        frames=generate_plan(seed, plan),
        events=script.events(), plan=plan)


def attribute_factors(frames: np.ndarray, frame: int,
                      window: int = 40) -> Dict[str, float]:
    """Diagnose *which* factors moved at a detected change.

    Compares per-dimension means over the ``window`` frames before the
    start of the stream (the reference the detectors calibrated on) and
    the ``window`` frames from ``frame`` on, then folds dimension deltas
    onto factors via :data:`FACTOR_DIMS`.  Returns sigma-unit scores for
    every factor; the drifted factors dominate, and entangled factors
    (``occlusion`` vs lighting/density) score together -- which is the
    honest answer, so the score map is reported rather than a thresholded
    verdict.
    """
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 2:
        raise ScenarioError(
            f"frames must be a 2-D stream, got shape {frames.shape}")
    if not 0 < frame < len(frames):
        raise ScenarioError(
            f"attribution frame {frame} outside the "
            f"{len(frames)}-frame stream")
    if window <= 0:
        raise ScenarioError(f"window must be positive, got {window}")
    reference = frames[:min(window, frame)]
    post = frames[frame:frame + window]
    delta = post.mean(axis=0) - reference.mean(axis=0)
    return {factor: float(np.mean([abs(delta[dim]) for dim in dims]))
            for factor, dims in FACTOR_DIMS.items()}


def observed_events(script: DriftScript) -> Tuple[DriftEvent, ...]:
    """Derive ground truth by *scanning* the factor trajectory.

    Independent of :meth:`DriftScript.events`: walks each track's
    compiled values and records every departure from baseline (plus, for
    ``camera_displacement``, the return to baseline as a
    ``recalibration``).  The property suite cross-checks the two
    derivations against each other.
    """
    merged: Dict[Tuple[int, str], List[Tuple[str, float]]] = {}
    for track in script.tracks:
        previous = 0.0
        for frame in range(script.frames):
            value = track.value_at(frame)
            if value != 0.0 and previous == 0.0:
                merged.setdefault((frame, track.kind), []).append(
                    (track.factor, track.magnitude))
            elif value == 0.0 and previous != 0.0 \
                    and track.kind == "camera_displacement":
                merged.setdefault((frame, "recalibration"), []).append(
                    (track.factor, 0.0))
            previous = value
    out: List[DriftEvent] = []
    for (frame, kind), group in sorted(merged.items()):
        factors = tuple(sorted({factor for factor, _ in group}))
        magnitude = max((mag for _, mag in group), key=abs)
        out.append(DriftEvent(frame, factors, kind, magnitude))
    return tuple(out)
