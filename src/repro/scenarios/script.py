"""Declarative drift scripts: typed factor tracks with structured ground
truth.

The paper's problem statement is a stream switching between distributions
``F_k`` -- but a useful benchmark needs to know *what* changed, not just
*when*.  A :class:`DriftScript` makes the change explicit: it is a set of
:class:`FactorTrack` entries, each driving one generative factor
(``lighting``, camera ``geometry``, object ``density``, sensor ``noise``,
``occlusion``) through one temporal drift shape (``abrupt``, ``gradual``,
``recurring``, ``adversarial_slow``, ``camera_displacement`` with
recalibration, ``occlusion``).  Tracks sharing an onset form a
correlated/compound drift.

Every script yields structured ground truth: :meth:`DriftScript.events`
returns one :class:`DriftEvent` per distribution change -- which factors
moved, at which frame, by how much, and with what kind -- and
:meth:`DriftScript.factor_values` gives the per-frame factor state.
Magnitudes are expressed in reference-sigma units of the feature-space
backend; the video backend normalizes by :attr:`DriftScript.feature_scale`
to drive rendering parameters.

One script compiles to three backends (see :mod:`repro.scenarios.compile`,
:mod:`repro.scenarios.video` and :mod:`repro.scenarios.workload`): gaussian
feature streams, pixel video streams, and drift-coupled serving workload
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Tuple

from repro.errors import ScenarioError

#: The addressable generative factors (disentangled axes of the frame
#: distribution).  ``occlusion`` is a factor of its own: an occluder
#: changes appearance *and* hides objects, so its feature-space dims
#: overlap lighting and density (see ``repro.scenarios.compile``).
FACTORS: Tuple[str, ...] = (
    "lighting", "geometry", "density", "noise", "occlusion")

#: Temporal drift shapes a track can follow.
KINDS: Tuple[str, ...] = (
    "abrupt", "gradual", "recurring", "adversarial_slow",
    "camera_displacement", "occlusion")

#: Event kinds: every track kind, plus the ``recalibration`` event a
#: ``camera_displacement`` track emits when the camera is re-registered.
EVENT_KINDS: Tuple[str, ...] = KINDS + ("recalibration",)


@dataclass(frozen=True)
class DriftEvent:
    """One ground-truth distribution change.

    ``frame`` is the first frame drawn from the changed distribution;
    ``factors`` the (sorted) generative factors that moved; ``magnitude``
    the largest factor displacement in reference-sigma units (``0.0`` for
    a ``recalibration`` event, which returns the factor to baseline).
    """

    frame: int
    factors: Tuple[str, ...]
    kind: str
    magnitude: float


@dataclass(frozen=True)
class FactorTrack:
    """One factor driven through one drift shape.

    ``magnitude`` is the peak displacement in reference-sigma units
    (signed; an occluder *lowers* object density).  Temporal parameters by
    kind:

    - ``abrupt``: steps to ``magnitude`` at ``onset`` and holds.
    - ``gradual`` / ``adversarial_slow``: ramps over ``duration`` frames
      after ``onset`` then holds.  With ``steps > 0`` the ramp is a
      staircase of ``steps`` equal risers (``duration`` must divide
      evenly); with ``steps == 0`` it is per-frame smooth.
      ``adversarial_slow`` eases quadratically, so early increments stay
      far below detection thresholds.
    - ``recurring``: a square wave -- active for ``duration`` frames at
      ``onset + i * period`` for each of ``recurrences`` episodes.
    - ``camera_displacement``: active from ``onset`` until recalibration
      restores the baseline after ``recovery`` frames.
    - ``occlusion``: active for ``duration`` frames from ``onset``, then
      the occluder is removed.
    """

    factor: str
    kind: str
    onset: int
    magnitude: float
    duration: int = 0
    period: int = 0
    recurrences: int = 0
    recovery: int = 0
    steps: int = 0

    def __post_init__(self) -> None:
        if self.factor not in FACTORS:
            raise ScenarioError(
                f"factor must be one of {FACTORS}, got {self.factor!r}")
        if self.kind not in KINDS:
            raise ScenarioError(
                f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.onset < 0:
            raise ScenarioError(
                f"onset must be non-negative, got {self.onset}")
        if self.magnitude == 0.0:
            raise ScenarioError(
                "magnitude must be non-zero (a zero-magnitude track is "
                "not a drift)")
        if self.kind in ("gradual", "adversarial_slow", "occlusion"):
            if self.duration <= 0:
                raise ScenarioError(
                    f"{self.kind} tracks need a positive duration, "
                    f"got {self.duration}")
        if self.kind == "adversarial_slow" and self.steps <= 0:
            raise ScenarioError(
                "adversarial_slow tracks must quantize their ramp "
                "(steps > 0), so every increment is an addressable "
                "sub-threshold rise")
        if self.steps < 0:
            raise ScenarioError(f"steps must be >= 0, got {self.steps}")
        if self.steps > 0 and self.duration % self.steps != 0:
            raise ScenarioError(
                f"duration {self.duration} must divide evenly into "
                f"{self.steps} steps")
        if self.kind == "recurring":
            if self.recurrences < 1:
                raise ScenarioError(
                    f"recurring tracks need recurrences >= 1, "
                    f"got {self.recurrences}")
            if self.duration <= 0 or self.period <= self.duration:
                raise ScenarioError(
                    f"recurring tracks need 0 < duration < period, got "
                    f"duration={self.duration} period={self.period}")
        if self.kind == "camera_displacement" and self.recovery <= 0:
            raise ScenarioError(
                f"camera_displacement tracks need recovery > 0 (frames "
                f"until recalibration), got {self.recovery}")

    # ------------------------------------------------------------------
    def value_at(self, frame: int) -> float:
        """The track's displacement (sigma units) at global ``frame``."""
        p = frame - self.onset
        if p < 0:
            return 0.0
        if self.kind == "abrupt":
            return self.magnitude
        if self.kind in ("gradual", "adversarial_slow"):
            if p >= self.duration:
                return self.magnitude
            if self.steps > 0:
                progress = (p // (self.duration // self.steps) + 1) / self.steps
            else:
                progress = (p + 1) / self.duration
            if self.kind == "adversarial_slow":
                progress = progress * progress
            return self.magnitude * progress
        if self.kind == "recurring":
            if p >= self.period * self.recurrences:
                return 0.0
            return self.magnitude if (p % self.period) < self.duration else 0.0
        if self.kind == "camera_displacement":
            return self.magnitude if p < self.recovery else 0.0
        # occlusion
        return self.magnitude if p < self.duration else 0.0

    def change_points(self) -> List[int]:
        """Frames where :meth:`value_at` may change (for piecewise
        compilation); always includes the onset."""
        if self.kind == "abrupt":
            return [self.onset]
        if self.kind in ("gradual", "adversarial_slow"):
            if self.steps > 0:
                riser = self.duration // self.steps
                points = [self.onset + i * riser for i in range(self.steps)]
            else:
                points = list(range(self.onset, self.onset + self.duration))
            return points + [self.onset + self.duration]
        if self.kind == "recurring":
            points = []
            for i in range(self.recurrences):
                start = self.onset + i * self.period
                points.extend([start, start + self.duration])
            return points
        if self.kind == "camera_displacement":
            return [self.onset, self.onset + self.recovery]
        return [self.onset, self.onset + self.duration]

    def events(self, frames: int) -> List[DriftEvent]:
        """Ground-truth events inside a ``frames``-long script."""
        out: List[DriftEvent] = []
        if self.kind == "recurring":
            for i in range(self.recurrences):
                start = self.onset + i * self.period
                if start < frames:
                    out.append(DriftEvent(start, (self.factor,),
                                          "recurring", self.magnitude))
            return out
        if self.onset < frames:
            out.append(DriftEvent(self.onset, (self.factor,), self.kind,
                                  self.magnitude))
        if self.kind == "camera_displacement" \
                and self.onset + self.recovery < frames:
            out.append(DriftEvent(self.onset + self.recovery,
                                  (self.factor,), "recalibration", 0.0))
        return out

    def scaled(self, scale: float) -> "FactorTrack":
        """Shrink/stretch the track's temporal parameters by ``scale``.

        Staircase ramps keep their step count, so riser values (and hence
        the compiled segment means) are preserved exactly; only lengths
        change -- matching the benchmark's ``--quick`` halving.
        """
        if scale <= 0:
            raise ScenarioError(f"scale must be positive, got {scale}")

        def stretch(value: int, minimum: int = 0) -> int:
            return max(int(value * scale), minimum) if value else value

        duration = stretch(self.duration, minimum=max(self.steps, 1))
        if self.steps > 0 and duration % self.steps != 0:
            duration = (duration // self.steps) * self.steps or self.steps
        return replace(
            self, onset=max(int(self.onset * scale), 0), duration=duration,
            period=stretch(self.period, minimum=duration + 1),
            recovery=stretch(self.recovery, minimum=1 if self.recovery else 0))


@dataclass(frozen=True)
class DriftScript:
    """A named drift scenario: factor tracks over a fixed frame horizon.

    ``feature_scale`` is the sigma displacement that corresponds to a
    fully-driven factor in the pixel backend (magnitude ``feature_scale``
    maps lighting all the way from the base to the target condition).
    """

    name: str
    frames: int
    tracks: Tuple[FactorTrack, ...] = ()
    feature_scale: float = 6.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scripts need a non-empty name")
        if self.frames <= 0:
            raise ScenarioError(
                f"frames must be positive, got {self.frames}")
        if self.feature_scale <= 0:
            raise ScenarioError(
                f"feature_scale must be positive, got {self.feature_scale}")
        object.__setattr__(self, "tracks", tuple(self.tracks))
        for track in self.tracks:
            if not isinstance(track, FactorTrack):
                raise ScenarioError(
                    f"tracks must be FactorTrack instances, got "
                    f"{type(track).__name__}")
            if track.onset >= self.frames:
                raise ScenarioError(
                    f"track on {track.factor!r} has onset {track.onset} "
                    f"outside the {self.frames}-frame script")

    # ------------------------------------------------------------------
    @property
    def stationary(self) -> bool:
        return not self.tracks

    def factor_values(self, frame: int) -> Dict[str, float]:
        """Per-factor displacement (sigma units) at ``frame``; factors
        without a track report ``0.0``.  Multiple tracks on one factor
        add."""
        if frame < 0 or frame >= self.frames:
            raise ScenarioError(
                f"frame {frame} outside the {self.frames}-frame script")
        values = {factor: 0.0 for factor in FACTORS}
        for track in self.tracks:
            values[track.factor] += track.value_at(frame)
        return values

    def events(self) -> Tuple[DriftEvent, ...]:
        """Ground-truth change log, ordered by frame.

        Tracks whose events share a frame and kind merge into one
        compound event (``factors`` holds every mover, ``magnitude`` the
        largest absolute displacement among them).
        """
        merged: Dict[Tuple[int, str], List[DriftEvent]] = {}
        for track in self.tracks:
            for event in track.events(self.frames):
                merged.setdefault((event.frame, event.kind), []).append(event)
        out: List[DriftEvent] = []
        for (frame, kind), group in sorted(merged.items()):
            factors = tuple(sorted({f for e in group for f in e.factors}))
            magnitude = max((e.magnitude for e in group), key=abs)
            out.append(DriftEvent(frame, factors, kind, magnitude))
        return tuple(out)

    def onsets(self) -> Tuple[int, ...]:
        """Frames where the distribution changes (sorted, unique)."""
        return tuple(sorted({event.frame for event in self.events()}))

    @property
    def onset(self) -> "int | None":
        """The first distribution change, ``None`` for a stationary
        script (the benchmark's false-alarm control)."""
        onsets = self.onsets()
        return onsets[0] if onsets else None

    def change_points(self) -> List[int]:
        """Sorted frames where any factor value may change, bounded to
        the script (frame 0 always included)."""
        points = {0}
        for track in self.tracks:
            points.update(p for p in track.change_points()
                          if 0 < p < self.frames)
        return sorted(points)

    def scaled(self, scale: float) -> "DriftScript":
        """The script with every temporal parameter scaled (``0.5`` is
        the benchmark's ``--quick`` variant); magnitudes are untouched."""
        if scale <= 0:
            raise ScenarioError(f"scale must be positive, got {scale}")
        return DriftScript(
            name=self.name,
            frames=max(int(self.frames * scale), 1),
            tracks=tuple(track.scaled(scale) for track in self.tracks),
            feature_scale=self.feature_scale)

    def drifted_factors(self) -> Tuple[str, ...]:
        """Sorted factors that ever leave baseline."""
        return tuple(sorted({track.factor for track in self.tracks}))


def compound(name: str, frames: int, kind: str, onset: int,
             magnitude: float,
             factors: Tuple[str, ...] = ("lighting", "geometry",
                                         "density", "noise"),
             feature_scale: float = 6.0, **track_kwargs) -> DriftScript:
    """A correlated drift: every factor in ``factors`` follows the same
    track, so all feature dims move together -- the classic 'the whole
    distribution shifted' scenario of the original benchmark matrix."""
    tracks = tuple(FactorTrack(factor=factor, kind=kind, onset=onset,
                               magnitude=magnitude, **track_kwargs)
                   for factor in factors)
    return DriftScript(name=name, frames=frames, tracks=tracks,
                       feature_scale=feature_scale)
