"""Frame-carrier coercion helpers.

Every layer of the pipeline accepts "frame items" that are either raw pixel
arrays, ``(pixels-like, ...)`` sequences, or carrier objects with a
``pixels`` attribute (e.g. :class:`~repro.video.stream.Frame`, which also
carries ground truth for annotators).  These two helpers are the single
definition of that coercion contract; they used to be copy-pasted as
``_pixels_of`` / ``_with_pixels`` in four modules.

``pixels_of`` never copies when the input is already a float64 array, so it
is safe on hot paths; ``with_pixels`` preserves dataclass carriers (and
their metadata) when swapping repaired pixels back in.
"""

from __future__ import annotations

import dataclasses

import numpy as np


def pixels_of(item: object) -> np.ndarray:
    """Coerce a frame item to a float64 pixel array.

    Accepts a raw ``np.ndarray``, anything ``np.asarray`` understands
    (nested tuples/lists), or a carrier object exposing ``.pixels``.
    """
    pixels = getattr(item, "pixels", item)
    return np.asarray(pixels, dtype=np.float64)


def with_pixels(item: object, pixels: np.ndarray) -> object:
    """Rebuild ``item`` with ``pixels`` swapped in, keeping metadata when the
    carrier is a dataclass (``Frame``); otherwise the bare array stands in."""
    if hasattr(item, "pixels") and dataclasses.is_dataclass(item):
        return dataclasses.replace(item, pixels=pixels)
    return pixels
