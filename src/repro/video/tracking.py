"""Object tracking over per-frame detections.

Several systems the paper builds on answer queries over object *tracks*
rather than frames (MIRIS, OTIF: "how many distinct cars passed?").  This
module provides a classic greedy IoU tracker over
:class:`~repro.detectors.base.DetectionResult` sequences, producing
:class:`Track` objects that downstream queries can consume
(:class:`~repro.queries.tracks.TrackQuery`).

The tracker is detector-agnostic: feed it oracle detections for ground
truth tracks, or a fast detector's noisy output to study how drift-induced
recall loss fragments tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detectors.base import Detection, DetectionResult
from repro.errors import ConfigurationError


@dataclass
class TrackPoint:
    """One observation of a tracked object."""

    frame_index: int
    x: float
    y: float
    confidence: float = 1.0


@dataclass
class Track:
    """A linked sequence of observations of (putatively) one object."""

    track_id: int
    kind: str
    points: List[TrackPoint] = field(default_factory=list)

    @property
    def start(self) -> int:
        return self.points[0].frame_index

    @property
    def end(self) -> int:
        return self.points[-1].frame_index

    @property
    def length(self) -> int:
        return len(self.points)

    @property
    def displacement(self) -> float:
        """Euclidean distance between the first and last observation."""
        if len(self.points) < 2:
            return 0.0
        first, last = self.points[0], self.points[-1]
        return ((last.x - first.x) ** 2 + (last.y - first.y) ** 2) ** 0.5

    def position_at(self, frame_index: int) -> Optional[Tuple[float, float]]:
        """Centre at ``frame_index`` if the track was observed there."""
        for point in self.points:
            if point.frame_index == frame_index:
                return (point.x, point.y)
        return None


def _iou(box_a: Tuple[float, float, float, float],
         box_b: Tuple[float, float, float, float]) -> float:
    """Intersection-over-union of two ``(x0, y0, x1, y1)`` boxes."""
    ix0 = max(box_a[0], box_b[0])
    iy0 = max(box_a[1], box_b[1])
    ix1 = min(box_a[2], box_b[2])
    iy1 = min(box_a[3], box_b[3])
    if ix0 >= ix1 or iy0 >= iy1:
        return 0.0
    inter = (ix1 - ix0) * (iy1 - iy0)
    area_a = (box_a[2] - box_a[0]) * (box_a[3] - box_a[1])
    area_b = (box_b[2] - box_b[0]) * (box_b[3] - box_b[1])
    return inter / (area_a + area_b - inter)


class IoUTracker:
    """Greedy IoU association tracker.

    Detections are matched to active tracks by best IoU of fixed-size boxes
    around the centres (detections carry centres, not extents); unmatched
    detections open new tracks; tracks unmatched for ``max_age`` consecutive
    frames are closed.  Greedy best-first matching is the standard
    lightweight baseline (the Hungarian refinement matters only in dense
    crossing traffic).
    """

    def __init__(self, iou_threshold: float = 0.1, box_size: float = 0.08,
                 max_age: int = 3) -> None:
        if not 0.0 < iou_threshold < 1.0:
            raise ConfigurationError(
                f"iou_threshold must be in (0, 1), got {iou_threshold}")
        if box_size <= 0:
            raise ConfigurationError(
                f"box_size must be positive, got {box_size}")
        if max_age < 1:
            raise ConfigurationError(f"max_age must be >= 1, got {max_age}")
        self.iou_threshold = iou_threshold
        self.box_size = box_size
        self.max_age = max_age
        self._next_id = 0
        self._active: Dict[int, Track] = {}
        self._missed: Dict[int, int] = {}
        self.closed: List[Track] = []
        self._frame_index = 0

    def _box(self, x: float, y: float) -> Tuple[float, float, float, float]:
        half = self.box_size / 2
        return (x - half, y - half, x + half, y + half)

    def update(self, result: DetectionResult) -> List[Track]:
        """Consume one frame's detections; returns tracks updated this
        frame (matched or newly opened)."""
        detections = list(result.detections)
        # candidate (iou, track_id, detection_idx) pairs, kind-compatible
        candidates = []
        for track_id, track in self._active.items():
            last = track.points[-1]
            track_box = self._box(last.x, last.y)
            for det_idx, detection in enumerate(detections):
                if detection.kind != track.kind:
                    continue
                iou = _iou(track_box, self._box(detection.x, detection.y))
                if iou >= self.iou_threshold:
                    candidates.append((iou, track_id, det_idx))
        candidates.sort(reverse=True)
        matched_tracks = set()
        matched_detections = set()
        touched: List[Track] = []
        for iou, track_id, det_idx in candidates:
            if track_id in matched_tracks or det_idx in matched_detections:
                continue
            matched_tracks.add(track_id)
            matched_detections.add(det_idx)
            detection = detections[det_idx]
            track = self._active[track_id]
            track.points.append(TrackPoint(self._frame_index, detection.x,
                                           detection.y,
                                           detection.confidence))
            self._missed[track_id] = 0
            touched.append(track)
        # open new tracks for unmatched detections
        for det_idx, detection in enumerate(detections):
            if det_idx in matched_detections:
                continue
            track = Track(track_id=self._next_id, kind=detection.kind,
                          points=[TrackPoint(self._frame_index, detection.x,
                                             detection.y,
                                             detection.confidence)])
            self._active[self._next_id] = track
            self._missed[self._next_id] = 0
            self._next_id += 1
            touched.append(track)
        # age out unmatched tracks
        for track_id in list(self._active):
            if track_id in matched_tracks or (
                    self._active[track_id].end == self._frame_index):
                continue
            self._missed[track_id] += 1
            if self._missed[track_id] >= self.max_age:
                self.closed.append(self._active.pop(track_id))
                del self._missed[track_id]
        self._frame_index += 1
        return touched

    def finish(self) -> List[Track]:
        """Close all active tracks and return the complete track list."""
        self.closed.extend(self._active.values())
        self._active.clear()
        self._missed.clear()
        return sorted(self.closed, key=lambda t: (t.start, t.track_id))

    @property
    def active_tracks(self) -> List[Track]:
        return list(self._active.values())


def track_detections(results: Sequence[DetectionResult],
                     **tracker_kwargs) -> List[Track]:
    """Track a full sequence of detection results in one call."""
    tracker = IoUTracker(**tracker_kwargs)
    for result in results:
        tracker.update(result)
    return tracker.finish()


def ground_truth_tracks(frames, kind: Optional[str] = None) -> List[Track]:
    """Oracle tracks from renderer ground truth.

    Objects are frozen dataclasses re-created by motion each frame, so
    identity is recovered by IoU association over the true positions --
    with perfect detections the tracker's output *is* the ground truth.
    """
    results = []
    for frame in frames:
        detections = [Detection(kind=o.kind, x=o.x, y=o.y)
                      for o in frame.objects
                      if kind is None or o.kind == kind]
        results.append(DetectionResult(detections))
    return track_detections(results)
