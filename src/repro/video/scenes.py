"""Scene conditions and camera angles -- the frame distributions.

A :class:`SceneCondition` controls global appearance (background brightness,
object visibility, weather noise); a :class:`CameraAngle` controls geometry
(shear / offset / zoom of object positions and the background gradient
orientation).  A :class:`SegmentSpec` fixes one (condition, angle) pair plus
object statistics, defining one distribution ``F_k`` of the paper's problem
statement.  Conditions support linear interpolation so streams can drift
*gradually* (the paper's slow-drift experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SceneCondition:
    """Global appearance parameters of a weather / time-of-day condition."""

    name: str
    background: float = 0.55          # base background brightness
    object_gain: float = 1.0          # multiplier on object intensity
    noise_std: float = 0.02           # white sensor noise
    rain_streaks: float = 0.0         # density of dark vertical streaks
    snow_speckle: float = 0.0         # density of bright speckles
    headlights: bool = False          # draw bright dots on objects (night)
    contrast: float = 1.0             # background gradient contrast
    occlusion: float = 0.0            # fraction of the view an occluder hides

    def __post_init__(self) -> None:
        if not 0.0 <= self.background <= 1.0:
            raise ConfigurationError(
                f"background must be in [0, 1], got {self.background}")
        if self.noise_std < 0:
            raise ConfigurationError(
                f"noise_std must be non-negative, got {self.noise_std}")
        if not 0.0 <= self.occlusion <= 1.0:
            raise ConfigurationError(
                f"occlusion must be in [0, 1], got {self.occlusion}")

    def blend(self, other: "SceneCondition", t: float) -> "SceneCondition":
        """Linear interpolation toward ``other`` (``t`` in [0, 1]).

        Used by gradual drift: the stream renders intermediate conditions,
        so the distribution changes smoothly like a real dusk transition.
        """
        if not 0.0 <= t <= 1.0:
            raise ConfigurationError(f"t must be in [0, 1], got {t}")

        def lerp(a: float, b: float) -> float:
            return a + (b - a) * t

        return SceneCondition(
            name=f"{self.name}->{other.name}@{t:.2f}",
            background=lerp(self.background, other.background),
            object_gain=lerp(self.object_gain, other.object_gain),
            noise_std=lerp(self.noise_std, other.noise_std),
            rain_streaks=lerp(self.rain_streaks, other.rain_streaks),
            snow_speckle=lerp(self.snow_speckle, other.snow_speckle),
            headlights=other.headlights if t > 0.5 else self.headlights,
            contrast=lerp(self.contrast, other.contrast),
            occlusion=lerp(self.occlusion, other.occlusion),
        )


@dataclass(frozen=True)
class CameraAngle:
    """Geometric parameters of a camera placement."""

    name: str
    shear: float = 0.0        # horizontal shear applied to object positions
    offset_x: float = 0.0     # field-of-view shift
    offset_y: float = 0.0
    zoom: float = 1.0         # scale around the frame centre
    gradient_phase: float = 0.0  # orientation of the background gradient

    def __post_init__(self) -> None:
        if self.zoom <= 0:
            raise ConfigurationError(f"zoom must be positive, got {self.zoom}")

    def transform(self, x: float, y: float) -> Tuple[float, float]:
        """Map normalized object coordinates through the camera geometry."""
        cx = 0.5 + (x - 0.5) * self.zoom + self.shear * (y - 0.5) + self.offset_x
        cy = 0.5 + (y - 0.5) * self.zoom + self.offset_y
        return cx, cy


# ----------------------------------------------------------------------
# Predefined conditions (the BDD sequence vocabulary)
# ----------------------------------------------------------------------
DAY = SceneCondition(name="day", background=0.62, object_gain=1.0,
                     noise_std=0.02, contrast=1.0)
NIGHT = SceneCondition(name="night", background=0.12, object_gain=0.35,
                       noise_std=0.03, headlights=True, contrast=0.4)
RAIN = SceneCondition(name="rain", background=0.45, object_gain=0.8,
                      noise_std=0.05, rain_streaks=0.06, contrast=0.7)
SNOW = SceneCondition(name="snow", background=0.78, object_gain=0.85,
                      noise_std=0.04, snow_speckle=0.08, contrast=0.6)

CONDITIONS = {c.name: c for c in (DAY, NIGHT, RAIN, SNOW)}

FRONT = CameraAngle(name="front")

#: The default endpoint of the camera-geometry factor axis: where the
#: camera ends up after a knock / displacement, before recalibration.
DISPLACED = CameraAngle(name="displaced", shear=0.24, offset_x=0.18,
                        offset_y=-0.12, zoom=1.2, gradient_phase=1.8)


def make_angle(index: int, overlap_with: Optional[int] = None) -> CameraAngle:
    """A distinct fixed camera angle (Detrac / Tokyo style).

    ``overlap_with`` makes this angle share part of its field of view with
    another (paper Section 6.1.1: Tokyo angles 1 and 3 overlap, angle 2 does
    not), by keeping the offsets close to the referenced angle's.
    """
    if index < 0:
        raise ConfigurationError(f"index must be non-negative, got {index}")
    if overlap_with is not None:
        base = make_angle(overlap_with)
        return CameraAngle(
            name=f"angle_{index}",
            shear=base.shear + 0.05,
            offset_x=base.offset_x + 0.04,
            offset_y=base.offset_y - 0.03,
            zoom=base.zoom * 1.05,
            gradient_phase=base.gradient_phase + 0.2,
        )
    return CameraAngle(
        name=f"angle_{index}",
        shear=0.12 * ((index % 5) - 2),
        offset_x=0.09 * ((index * 2) % 5 - 2),
        offset_y=0.06 * ((index * 3) % 5 - 2),
        zoom=1.0 + 0.15 * ((index % 3) - 1),
        gradient_phase=0.9 * index,
    )


@dataclass(frozen=True)
class SegmentSpec:
    """One distribution F_k: condition + angle + object statistics.

    ``length`` is the number of frames the stream spends in this segment;
    ``transition`` the number of *leading* frames blended from the previous
    segment's condition (0 = abrupt drift, the default).
    """

    name: str
    condition: SceneCondition = field(default=DAY)
    angle: CameraAngle = field(default=FRONT)
    length: int = 1000
    objects_mean: float = 9.2
    objects_std: float = 6.4
    bus_fraction: float = 0.2
    transition: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError(f"length must be positive: {self.length}")
        if self.transition < 0 or self.transition > self.length:
            raise ConfigurationError(
                f"transition must be in [0, length], got {self.transition}")


@dataclass(frozen=True)
class FactorAxes:
    """Addressable generative-factor axes over the scene parameters.

    Turns the opaque condition / angle blobs into four independently
    drivable axes, each normalized so ``0.0`` is the baseline scene and
    ``1.0`` the fully-driven endpoint:

    - **lighting**: blends ``base_condition`` toward ``lit_condition``
      (endpoints return the canonical conditions, so segment vocabulary
      like ``day`` / ``night`` is preserved).
    - **geometry**: interpolates ``base_angle`` toward
      ``displaced_angle`` (shear, offsets, zoom, gradient phase).
    - **noise**: adds up to ``noise_span`` of sensor noise on top of
      whatever the lighting endpoint prescribes.
    - **occlusion**: covers up to ``occlusion_span`` of the view with a
      matte occluder.
    - **density** is a *signed* axis on object statistics:
      :meth:`density_shift` returns the objects-per-frame delta (an
      occluder compound drives it negative -- fewer visible objects).

    :mod:`repro.scenarios.video` maps a :class:`~repro.scenarios.script
    .DriftScript`'s sigma-unit factor values onto these axes.
    """

    base_condition: SceneCondition = field(default=DAY)
    lit_condition: SceneCondition = field(default=NIGHT)
    base_angle: CameraAngle = field(default=FRONT)
    displaced_angle: CameraAngle = field(default=DISPLACED)
    noise_span: float = 0.08
    density_span: float = 12.0
    occlusion_span: float = 0.6

    def __post_init__(self) -> None:
        for span in ("noise_span", "density_span", "occlusion_span"):
            if getattr(self, span) <= 0:
                raise ConfigurationError(
                    f"{span} must be positive, got {getattr(self, span)}")

    @staticmethod
    def _check_unit(name: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"{name} axis value must be in [0, 1], got {value}")

    def condition_at(self, lighting: float = 0.0, noise: float = 0.0,
                     occlusion: float = 0.0) -> SceneCondition:
        """The scene condition at the given normalized axis values."""
        for name, value in (("lighting", lighting), ("noise", noise),
                            ("occlusion", occlusion)):
            self._check_unit(name, value)
        if lighting == 0.0:
            condition = self.base_condition
        elif lighting == 1.0:
            condition = self.lit_condition
        else:
            condition = self.base_condition.blend(self.lit_condition,
                                                  lighting)
        if noise > 0.0 or occlusion > 0.0:
            condition = replace(
                condition,
                noise_std=condition.noise_std + noise * self.noise_span,
                occlusion=min(condition.occlusion
                              + occlusion * self.occlusion_span, 1.0))
        return condition

    def angle_at(self, geometry: float = 0.0) -> CameraAngle:
        """The camera angle at the given normalized geometry value."""
        self._check_unit("geometry", geometry)
        if geometry == 0.0:
            return self.base_angle
        if geometry == 1.0:
            return self.displaced_angle
        base, moved = self.base_angle, self.displaced_angle

        def lerp(a: float, b: float) -> float:
            return a + (b - a) * geometry

        return CameraAngle(
            name=f"{base.name}->{moved.name}@{geometry:.2f}",
            shear=lerp(base.shear, moved.shear),
            offset_x=lerp(base.offset_x, moved.offset_x),
            offset_y=lerp(base.offset_y, moved.offset_y),
            zoom=lerp(base.zoom, moved.zoom),
            gradient_phase=lerp(base.gradient_phase, moved.gradient_phase))

    def density_shift(self, density: float = 0.0) -> float:
        """Objects-per-frame delta for a signed density value in
        ``[-1, 1]``."""
        if not -1.0 <= density <= 1.0:
            raise ConfigurationError(
                f"density axis value must be in [-1, 1], got {density}")
        return density * self.density_span
