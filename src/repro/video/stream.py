"""Drifting video streams.

A :class:`VideoStream` walks a list of :class:`~repro.video.scenes.SegmentSpec`
in order, maintaining a persistent object population inside each segment
(temporal correlation) and switching distribution at segment boundaries --
abruptly by default, or gradually when the incoming segment declares a
``transition`` (the condition is blended frame by frame, the paper's
slow-drift setting).

Ground truth is attached to every frame: the object list, car/bus counts and
the segment name, so annotators and accuracy metrics never need a real
detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import ConfigurationError, StreamExhaustedError
from repro.rng import SeedLike, derive
from repro.video.objects import BUS, CAR, ObjectPopulation
from repro.video.renderer import Renderer
from repro.video.scenes import SegmentSpec


def count_label(count: int, num_classes: int, bucket_width: int = 1) -> int:
    """Bucket an object count into a class id in ``[0, num_classes)``."""
    if num_classes < 2:
        raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
    if bucket_width < 1:
        raise ConfigurationError(
            f"bucket_width must be >= 1, got {bucket_width}")
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    return min(count // bucket_width, num_classes - 1)


@dataclass(frozen=True)
class Frame:
    """One rendered frame with its ground truth."""

    index: int
    pixels: np.ndarray
    objects: tuple
    segment: str
    condition: str
    angle: str

    @property
    def car_count(self) -> int:
        return sum(1 for obj in self.objects if obj.kind == CAR)

    @property
    def bus_count(self) -> int:
        return sum(1 for obj in self.objects if obj.kind == BUS)

    @property
    def object_count(self) -> int:
        return len(self.objects)

    def count_label(self, num_classes: int, bucket_width: int = 1) -> int:
        """Car-count class: counts bucketed into ``bucket_width``-wide bins,
        clipped into ``[0, num_classes)``.

        Count-query classifiers (BlazeIt-style) predict count classes; with
        Table 5's high objects-per-frame variance, bucketing keeps the label
        space learnable while preserving the query's semantics (the metric
        compares predicted and true *classes*).
        """
        return count_label(self.car_count, num_classes, bucket_width)


class VideoStream:
    """An ordered sequence of drifting segments."""

    def __init__(self, segments: List[SegmentSpec],
                 renderer: Optional[Renderer] = None,
                 seed: SeedLike = None) -> None:
        if not segments:
            raise ConfigurationError("VideoStream needs at least one segment")
        names = [s.name for s in segments]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"segment names must be unique: {names}")
        self.segments = list(segments)
        self.renderer = renderer or Renderer()
        self._seed = seed

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def drift_frames(self) -> List[int]:
        """Global frame indices where the distribution changes (ground
        truth change points; the first segment starts at 0 and is not a
        drift)."""
        indices = []
        offset = 0
        for segment in self.segments[:-1]:
            offset += segment.length
            indices.append(offset)
        return indices

    def segment_of(self, index: int) -> SegmentSpec:
        """The segment owning global frame ``index``."""
        if index < 0 or index >= self.length:
            raise ConfigurationError(
                f"frame index {index} outside stream of length {self.length}")
        offset = 0
        for segment in self.segments:
            if index < offset + segment.length:
                return segment
            offset += segment.length
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    def frames(self) -> Iterator[Frame]:
        """Generate the full stream."""
        index = 0
        previous_condition = None
        for seg_idx, segment in enumerate(self.segments):
            pop_rng = derive(self._seed, seg_idx * 2 + 1)
            noise_rng = derive(self._seed, seg_idx * 2 + 2)
            population = ObjectPopulation(
                segment.objects_mean, segment.objects_std,
                bus_fraction=segment.bus_fraction, seed=pop_rng)
            # warm up the population so segment frame 0 is already typical
            for _ in range(5):
                population.step()
            for local in range(segment.length):
                condition = segment.condition
                if (segment.transition > 0 and previous_condition is not None
                        and local < segment.transition):
                    t = (local + 1) / segment.transition
                    condition = previous_condition.blend(segment.condition, t)
                objects = population.step()
                pixels = self.renderer.render(
                    objects, condition, segment.angle, rng=noise_rng)
                yield Frame(index=index, pixels=pixels,
                            objects=tuple(objects), segment=segment.name,
                            condition=condition.name,
                            angle=segment.angle.name)
                index += 1
            previous_condition = segment.condition

    def materialize(self, limit: Optional[int] = None,
                    exact: bool = False) -> List[Frame]:
        """Render the stream into a list (optionally truncated).

        With ``exact=True`` a ``limit`` the stream cannot supply raises
        :class:`~repro.errors.StreamExhaustedError` instead of silently
        returning fewer frames -- use it when a fixed frame count is a
        correctness requirement (training budgets, windowed selectors).
        """
        out: List[Frame] = []
        for frame in self.frames():
            out.append(frame)
            if limit is not None and len(out) >= limit:
                break
        if exact and limit is not None and len(out) < limit:
            raise StreamExhaustedError(
                f"stream supplied {len(out)} of the {limit} frames required")
        return out

    def segment_frames(self, name: str, count: int,
                       seed: SeedLike = None) -> List[Frame]:
        """Fresh frames drawn from one segment's distribution.

        Used to build training sets ``T_i``: a new stream containing only
        that segment is rendered with an independent seed, so training data
        and the evaluation stream never share frames.
        """
        spec = None
        for segment in self.segments:
            if segment.name == name:
                spec = segment
                break
        if spec is None:
            raise ConfigurationError(
                f"unknown segment {name!r}; known: "
                f"{[s.name for s in self.segments]}")
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        iso_seed = seed if seed is not None else derive(self._seed, 7919)
        only = SegmentSpec(
            name=spec.name, condition=spec.condition, angle=spec.angle,
            length=count, objects_mean=spec.objects_mean,
            objects_std=spec.objects_std, bus_fraction=spec.bus_fraction)
        solo = VideoStream([only], renderer=self.renderer, seed=iso_seed)
        # training sets are a fixed budget: under-supplying must be loud
        return solo.materialize(limit=count, exact=True)


def frames_to_pixels(frames: List[Frame]) -> np.ndarray:
    """Stack frames' pixels into ``(N, H, W)``."""
    if not frames:
        raise ConfigurationError("no frames to stack")
    return np.stack([f.pixels for f in frames])


def frames_to_count_labels(frames: List[Frame], num_classes: int,
                           bucket_width: int = 1) -> np.ndarray:
    """Count labels for a frame list."""
    return np.asarray(
        [f.count_label(num_classes, bucket_width) for f in frames],
        dtype=np.int64)
