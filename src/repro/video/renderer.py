"""Rasterising scenes to pixel arrays.

Frames are grayscale float arrays in ``[0, 1]`` with shape ``(H, W)``.
The renderer composes, in order: a background gradient (oriented by the
camera angle, lit by the condition), a road band, the objects (rectangles,
with headlight dots at night), an optional matte occluder hiding part of
the view, then condition noise (sensor noise, rain streaks, snow
speckle).  Everything is vectorised numpy; no image libraries.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.video.objects import SceneObject
from repro.video.scenes import CameraAngle, SceneCondition


# Static world landmarks (buildings, signs): fixed world positions drawn
# through the camera transform, so each camera angle sees them at different
# frame positions -- the dominant static cue distinguishing camera
# placements, as in real fixed-camera footage.
_LANDMARKS = (
    # (x, y, width, height, shade relative to background)
    (0.15, 0.12, 0.12, 0.10, -0.16),
    (0.72, 0.10, 0.10, 0.14, +0.14),
    (0.40, 0.90, 0.16, 0.08, -0.12),
    (0.88, 0.80, 0.09, 0.12, +0.11),
    (0.05, 0.75, 0.10, 0.09, -0.10),
)


class Renderer:
    """Renders object lists into grayscale frames."""

    def __init__(self, height: int = 32, width: int = 32) -> None:
        if height < 8 or width < 8:
            raise ConfigurationError(
                f"frame size must be at least 8x8, got {(height, width)}")
        self.height = height
        self.width = width
        ys = np.linspace(0.0, 1.0, height)[:, None]
        xs = np.linspace(0.0, 1.0, width)[None, :]
        self._ys = np.broadcast_to(ys, (height, width))
        self._xs = np.broadcast_to(xs, (height, width))

    @property
    def shape(self) -> tuple:
        return (self.height, self.width)

    # ------------------------------------------------------------------
    def _background(self, condition: SceneCondition,
                    angle: CameraAngle) -> np.ndarray:
        phase = angle.gradient_phase
        gradient = (np.cos(phase) * self._xs + np.sin(phase) * self._ys)
        gradient = (gradient - gradient.min()) / max(
            gradient.max() - gradient.min(), 1e-9)
        base = condition.background + condition.contrast * 0.18 * (gradient - 0.5)
        # road band: a darker strip where objects drive, mapped through the
        # camera geometry -- a different angle shifts, scales and tilts the
        # road, which is the dominant global cue distinguishing camera
        # placements (as in the Detrac / Tokyo fixed-angle sequences)
        road_centre = 0.5 + (0.55 - 0.5) * angle.zoom + angle.offset_y
        road_line = road_centre + angle.shear * (self._xs - 0.5)
        road_width = 0.22 * angle.zoom
        road = np.exp(-(((self._ys - road_line) / road_width) ** 2))
        canvas = base - 0.14 * condition.contrast * road
        self._draw_landmarks(canvas, condition, angle)
        return canvas

    def _draw_landmarks(self, canvas: np.ndarray, condition: SceneCondition,
                        angle: CameraAngle) -> None:
        for lx, ly, lw, lh, shade in _LANDMARKS:
            cx, cy = angle.transform(lx, ly)
            w = lw * angle.zoom
            h = lh * angle.zoom
            x0 = max(int(np.floor((cx - w / 2) * self.width)), 0)
            x1 = min(int(np.ceil((cx + w / 2) * self.width)), self.width)
            y0 = max(int(np.floor((cy - h / 2) * self.height)), 0)
            y1 = min(int(np.ceil((cy + h / 2) * self.height)), self.height)
            if x0 < x1 and y0 < y1:
                canvas[y0:y1, x0:x1] += shade * condition.contrast

    def _draw_object(self, canvas: np.ndarray, obj: SceneObject,
                     condition: SceneCondition, angle: CameraAngle) -> None:
        cx, cy = angle.transform(obj.x, obj.y)
        w = obj.width * angle.zoom
        h = obj.height * angle.zoom
        x0 = int(np.floor((cx - w / 2) * self.width))
        x1 = int(np.ceil((cx + w / 2) * self.width))
        y0 = int(np.floor((cy - h / 2) * self.height))
        y1 = int(np.ceil((cy + h / 2) * self.height))
        x0, x1 = max(x0, 0), min(x1, self.width)
        y0, y1 = max(y0, 0), min(y1, self.height)
        if x0 >= x1 or y0 >= y1:
            return
        value = np.clip(obj.intensity * condition.object_gain, 0.0, 1.0)
        canvas[y0:y1, x0:x1] = value
        if condition.headlights:
            # bright dots on the leading edge, the visible signature at night
            hx = min(x1 - 1, self.width - 1)
            hy = min(max((y0 + y1) // 2, 0), self.height - 1)
            canvas[hy, hx] = 1.0
            if hy + 1 < self.height:
                canvas[hy + 1, hx] = 0.9

    def _occluder(self, canvas: np.ndarray,
                  condition: SceneCondition) -> None:
        """A matte object (fallen sign, grown foliage, smudged lens)
        covering the leading ``occlusion`` fraction of the view.

        Drawn after the objects so it genuinely *hides* them (the cups-
        counter failure mode: the scene looks stable while the objects the
        query counts are gone), and before weather so sensor noise still
        covers the whole frame.
        """
        if condition.occlusion <= 0:
            return
        cols = min(int(round(condition.occlusion * self.width)), self.width)
        if cols > 0:
            canvas[:, :cols] = 0.05

    def _weather(self, canvas: np.ndarray, condition: SceneCondition,
                 rng: np.random.Generator) -> np.ndarray:
        if condition.rain_streaks > 0:
            n_streaks = max(1, int(condition.rain_streaks * self.width))
            cols = rng.integers(0, self.width, size=n_streaks)
            starts = rng.integers(0, max(self.height - 8, 1), size=n_streaks)
            lengths = rng.integers(4, max(self.height // 2, 5), size=n_streaks)
            for col, start, length in zip(cols, starts, lengths):
                end = min(start + length, self.height)
                canvas[start:end, col] -= 0.18
        if condition.snow_speckle > 0:
            mask = rng.uniform(size=canvas.shape) < condition.snow_speckle
            canvas[mask] = np.maximum(canvas[mask], 0.95)
        if condition.noise_std > 0:
            canvas = canvas + rng.normal(0.0, condition.noise_std, canvas.shape)
        return canvas

    # ------------------------------------------------------------------
    def render(self, objects: List[SceneObject], condition: SceneCondition,
               angle: CameraAngle, seed: SeedLike = None,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Compose one frame; returns ``(H, W)`` floats in ``[0, 1]``."""
        noise_rng = rng if rng is not None else ensure_rng(seed)
        canvas = self._background(condition, angle)
        for obj in objects:
            self._draw_object(canvas, obj, condition, angle)
        self._occluder(canvas, condition)
        canvas = self._weather(canvas, condition, noise_rng)
        return np.clip(canvas, 0.0, 1.0)
