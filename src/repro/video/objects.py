"""Scene objects: the cars and buses that populate synthetic frames.

Positions are normalized to ``[0, 1]`` in both axes; the renderer maps them
to pixels.  Objects persist across frames and move with a per-object
velocity, giving streams the temporal correlation real video has (and that
the paper's VAE-based i.i.d. sampling exists to break).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng

CAR = "car"
BUS = "bus"
KINDS = (CAR, BUS)


@dataclass(frozen=True)
class SceneObject:
    """One object in a scene (immutable; motion produces new instances)."""

    kind: str
    x: float
    y: float
    width: float
    height: float
    intensity: float
    vx: float = 0.0
    vy: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"object size must be positive, got {(self.width, self.height)}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ConfigurationError(
                f"intensity must be in [0, 1], got {self.intensity}")

    def step(self, dt: float = 1.0) -> "SceneObject":
        """Advance the object along its velocity."""
        return replace(self, x=self.x + self.vx * dt, y=self.y + self.vy * dt)

    @property
    def in_view(self) -> bool:
        """Whether any part of the object is still inside the frame."""
        half_w, half_h = self.width / 2, self.height / 2
        return (-half_w <= self.x <= 1.0 + half_w
                and -half_h <= self.y <= 1.0 + half_h)

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` in normalized coordinates."""
        return (self.x - self.width / 2, self.y - self.height / 2,
                self.x + self.width / 2, self.y + self.height / 2)


def random_object(rng: np.random.Generator, bus_fraction: float = 0.2,
                  speed: float = 0.01) -> SceneObject:
    """Spawn a random object entering from the left edge.

    Buses are larger and brighter than cars; all objects drift rightward
    along a lane (fixed ``y``) with small velocity jitter.  Spawn positions
    are uniform along the road (an object entering the camera's field of
    view can appear anywhere), which keeps the per-frame position marginal
    stationary within a segment -- spawning only at the left edge would make
    the x-distribution spread slowly over a segment's lifetime, a genuine
    within-segment drift that contaminates the drift-detection ground truth.
    """
    if not 0.0 <= bus_fraction <= 1.0:
        raise ConfigurationError(
            f"bus_fraction must be in [0, 1], got {bus_fraction}")
    is_bus = rng.uniform() < bus_fraction
    if is_bus:
        # buses: large mid-tone rectangles
        width = rng.uniform(0.12, 0.14)
        height = rng.uniform(0.075, 0.085)
        intensity = rng.uniform(0.38, 0.46)
    else:
        # cars: small dark rectangles (strong contrast on a bright road);
        # sizes kept tight so per-frame dark area is a reliable count signal
        width = rng.uniform(0.065, 0.075)
        height = rng.uniform(0.05, 0.056)
        intensity = rng.uniform(0.08, 0.16)
    return SceneObject(
        kind=BUS if is_bus else CAR,
        x=rng.uniform(-0.05, 1.0),
        y=rng.uniform(0.25, 0.85),
        width=width,
        height=height,
        intensity=intensity,
        vx=speed * rng.uniform(0.5, 1.5),
        vy=speed * rng.uniform(-0.1, 0.1),
    )


class ObjectPopulation:
    """Birth-death process maintaining a target object count per frame.

    ``target_mean`` / ``target_std`` match the paper's Table 5 objects-per-
    frame statistics: each frame's desired count is drawn from a clipped
    normal and the population spawns/expires objects toward it while
    existing objects keep moving (temporal correlation).
    """

    def __init__(self, target_mean: float, target_std: float,
                 bus_fraction: float = 0.2, speed: float = 0.01,
                 seed: SeedLike = None) -> None:
        if target_mean < 0 or target_std < 0:
            raise ConfigurationError(
                "target_mean and target_std must be non-negative")
        self.target_mean = target_mean
        self.target_std = target_std
        self.bus_fraction = bus_fraction
        self.speed = speed
        self._rng = ensure_rng(seed)
        self.objects: list = []

    def step(self) -> list:
        """Advance one frame; returns the current object list."""
        moved = [obj.step() for obj in self.objects]
        self.objects = [obj for obj in moved if obj.in_view]
        desired = int(round(self._rng.normal(self.target_mean,
                                             self.target_std)))
        desired = max(0, desired)
        while len(self.objects) < desired:
            self.objects.append(random_object(
                self._rng, bus_fraction=self.bus_fraction, speed=self.speed))
        if len(self.objects) > desired:
            # objects leave the scene oldest-first (front of the list)
            self.objects = self.objects[len(self.objects) - desired:]
        return list(self.objects)
