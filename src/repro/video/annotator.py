"""Oracle annotator -- the Mask R-CNN substitute.

In the paper, Mask R-CNN annotates training frames (counts, object
positions) and serves as the accuracy baseline.  Here the renderer already
knows the ground truth, so the annotator reads it from :class:`Frame`
objects, optionally corrupting a configurable fraction of labels (real
annotators are imperfect) and charging the simulated per-frame annotation
cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.clock import SimulatedClock
from repro.video.stream import Frame


class OracleAnnotator:
    """Labels frames from renderer ground truth.

    ``noise`` is the probability that a label is perturbed by +/-1 class
    (clipped to the valid range), modelling annotation error.
    """

    def __init__(self, num_classes: int = 10, noise: float = 0.0,
                 bucket_width: int = 1,
                 clock: Optional[SimulatedClock] = None,
                 seed: SeedLike = None) -> None:
        if num_classes < 2:
            raise ConfigurationError(
                f"num_classes must be >= 2, got {num_classes}")
        if not 0.0 <= noise <= 1.0:
            raise ConfigurationError(f"noise must be in [0, 1], got {noise}")
        if bucket_width < 1:
            raise ConfigurationError(
                f"bucket_width must be >= 1, got {bucket_width}")
        self.num_classes = num_classes
        self.noise = noise
        self.bucket_width = bucket_width
        self.clock = clock
        self._rng = ensure_rng(seed)

    def count_labels(self, frames: Sequence[Frame]) -> np.ndarray:
        """Car-count labels for a sequence of frames."""
        if len(frames) == 0:
            raise ConfigurationError("no frames to annotate")
        if self.clock is not None:
            self.clock.charge("annotate_frame", times=len(frames))
        labels = np.asarray(
            [f.count_label(self.num_classes, self.bucket_width)
             for f in frames], dtype=np.int64)
        if self.noise > 0:
            flips = self._rng.uniform(size=labels.shape[0]) < self.noise
            offsets = self._rng.choice([-1, 1], size=labels.shape[0])
            labels = np.where(flips, labels + offsets, labels)
            labels = np.clip(labels, 0, self.num_classes - 1)
        return labels

    def __call__(self, frames: Sequence[Frame]) -> np.ndarray:
        return self.count_labels(frames)

    def spatial_labels(self, frames: Sequence[Frame],
                       predicate) -> np.ndarray:
        """Binary labels: 1 when ``predicate(frame)`` holds."""
        if len(frames) == 0:
            raise ConfigurationError("no frames to annotate")
        if self.clock is not None:
            self.clock.charge("annotate_frame", times=len(frames))
        labels = np.asarray([int(bool(predicate(f))) for f in frames],
                            dtype=np.int64)
        if self.noise > 0:
            flips = self._rng.uniform(size=labels.shape[0]) < self.noise
            labels = np.where(flips, 1 - labels, labels)
        return labels


def positions_of(frame: Frame, kind: str) -> List[tuple]:
    """Centre coordinates of all objects of ``kind`` in a frame."""
    return [(obj.x, obj.y) for obj in frame.objects if obj.kind == kind]
