"""Frame feature helpers: downsampling and flattening.

The paper pre-processes BDD to the Detrac/Tokyo resolution; here the
equivalent utility is block-mean downsampling, used to shrink frames before
they reach the numpy networks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError


def downsample(frame: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsample a ``(H, W)`` frame by an integer factor."""
    if factor <= 0:
        raise ConfigurationError(f"factor must be positive, got {factor}")
    arr = np.asarray(frame, dtype=np.float64)
    if arr.ndim != 2:
        raise DimensionMismatchError(f"expected (H, W), got shape {arr.shape}")
    h, w = arr.shape
    if h % factor or w % factor:
        raise DimensionMismatchError(
            f"frame {arr.shape} not divisible by factor {factor}")
    return arr.reshape(h // factor, factor, w // factor, factor).mean(axis=(1, 3))


def downsample_batch(frames: np.ndarray, factor: int) -> np.ndarray:
    """Downsample a stack of frames ``(N, H, W)``."""
    arr = np.asarray(frames, dtype=np.float64)
    if arr.ndim != 3:
        raise DimensionMismatchError(
            f"expected (N, H, W), got shape {arr.shape}")
    n, h, w = arr.shape
    if factor <= 0:
        raise ConfigurationError(f"factor must be positive, got {factor}")
    if h % factor or w % factor:
        raise DimensionMismatchError(
            f"frames {arr.shape} not divisible by factor {factor}")
    return arr.reshape(n, h // factor, factor, w // factor, factor).mean(
        axis=(2, 4))


def flatten(frames: np.ndarray) -> np.ndarray:
    """Flatten ``(N, ...)`` frames to ``(N, D)`` (or one frame to ``(D,)``)."""
    arr = np.asarray(frames, dtype=np.float64)
    if arr.ndim <= 1:
        return arr
    if arr.ndim == 2:
        return arr.reshape(-1)
    return arr.reshape(arr.shape[0], -1)
