"""Synthetic equivalents of the paper's datasets (Section 6, Table 5).

- ``make_bdd``  -- 4 sequences (day, night, rain, snow), 9.2 +/- 6.4
  objects/frame, paper stream size 80 K.
- ``make_detrac`` -- 5 fixed camera angles, 17.2 +/- 7.1 objects/frame,
  paper stream size 30 K.
- ``make_tokyo`` -- 3 camera angles on one intersection, 19.2 +/- 4.7
  objects/frame, paper stream size 45 K; angles 1 and 3 share part of their
  field of view while angle 2 does not (Section 6.1.1).
- ``make_slow_drift`` -- a gradual day -> night transition (Section 6.1.3).

``scale`` divides the paper's segment lengths so the full evaluation runs on
CPU; the returned dataset records both the scaled and the paper-original
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike
from repro.video.renderer import Renderer
from repro.video.scenes import (
    DAY,
    NIGHT,
    RAIN,
    SNOW,
    SegmentSpec,
    make_angle,
)
from repro.video.stream import Frame, VideoStream

DEFAULT_COUNT_CLASSES = 8
DEFAULT_BUCKET_WIDTH = 5


@dataclass
class DriftingDataset:
    """A synthetic dataset: a drifting stream plus per-segment training data."""

    name: str
    stream: VideoStream
    num_count_classes: int = DEFAULT_COUNT_CLASSES
    count_bucket_width: int = DEFAULT_BUCKET_WIDTH
    paper_stream_size: int = 0
    paper_sequences: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def segment_names(self) -> List[str]:
        return [s.name for s in self.stream.segments]

    @property
    def drift_frames(self) -> List[int]:
        return self.stream.drift_frames

    def training_frames(self, segment: str, count: int,
                        seed: SeedLike = None) -> List[Frame]:
        """Fresh i.i.d.-style training frames ``T_i`` for one segment."""
        return self.stream.segment_frames(segment, count, seed=seed)

    def table5_stats(self, sample: int = 200) -> Dict[str, object]:
        """Table 5 row: sequences, stream size, objects/frame mean and std.

        Statistics are measured over ``sample`` frames drawn across all
        segments (both the scaled and the paper-original stream size are
        reported).
        """
        if sample <= 0:
            raise ConfigurationError(f"sample must be positive, got {sample}")
        per_segment = max(1, sample // len(self.stream.segments))
        counts: List[int] = []
        for segment in self.segment_names:
            frames = self.training_frames(segment, per_segment, seed=1234)
            counts.extend(f.object_count for f in frames)
        arr = np.asarray(counts, dtype=np.float64)
        return {
            "dataset": self.name,
            "sequences": len(self.stream.segments),
            "stream_size": self.stream.length,
            "paper_stream_size": self.paper_stream_size,
            "obj_per_frame": float(arr.mean()),
            "obj_per_frame_std": float(arr.std()),
        }


def _scaled(paper_length: int, scale: float, minimum: int = 60) -> int:
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(paper_length / scale)))


def make_bdd(scale: float = 100.0, seed: SeedLike = 0,
             frame_size: int = 32) -> DriftingDataset:
    """Synthetic BDD: day / night / rain / snow sequences (4 drifts incl.
    the return to day -- the stream is day, night, rain, snow, matching the
    paper's 4 sequences of 20 K frames each)."""
    length = _scaled(20_000, scale)
    renderer = Renderer(frame_size, frame_size)
    segments = [
        SegmentSpec(name="day", condition=DAY, length=length,
                    objects_mean=9.2, objects_std=6.4),
        SegmentSpec(name="night", condition=NIGHT, length=length,
                    objects_mean=9.2, objects_std=6.4),
        SegmentSpec(name="rain", condition=RAIN, length=length,
                    objects_mean=9.2, objects_std=6.4),
        SegmentSpec(name="snow", condition=SNOW, length=length,
                    objects_mean=9.2, objects_std=6.4),
    ]
    stream = VideoStream(segments, renderer=renderer, seed=seed)
    return DriftingDataset(name="BDD", stream=stream,
                           num_count_classes=6, count_bucket_width=4,
                           paper_stream_size=80_000, paper_sequences=4)


def make_detrac(scale: float = 100.0, seed: SeedLike = 1,
                frame_size: int = 32) -> DriftingDataset:
    """Synthetic Detrac: 5 distinct fixed camera angles (6 K frames each in
    the paper)."""
    length = _scaled(6_000, scale)
    renderer = Renderer(frame_size, frame_size)
    segments = [
        SegmentSpec(name=f"angle_{i}", condition=DAY, angle=make_angle(i),
                    length=length, objects_mean=17.2, objects_std=7.1)
        for i in range(1, 6)
    ]
    stream = VideoStream(segments, renderer=renderer, seed=seed)
    return DriftingDataset(name="Detrac", stream=stream,
                           num_count_classes=8, count_bucket_width=5,
                           paper_stream_size=30_000, paper_sequences=5)


def make_tokyo(scale: float = 100.0, seed: SeedLike = 2,
               frame_size: int = 32) -> DriftingDataset:
    """Synthetic Tokyo: 3 angles on the same intersection (15 K frames each
    in the paper); angles 1 and 3 overlap, angle 2 does not."""
    length = _scaled(15_000, scale)
    renderer = Renderer(frame_size, frame_size)
    angle_1 = make_angle(1)
    angle_2 = make_angle(4)            # geometrically far from angle 1
    angle_3 = make_angle(3, overlap_with=1)  # shares field of view with 1
    segments = [
        SegmentSpec(name="angle_1", condition=DAY, angle=angle_1,
                    length=length, objects_mean=19.2, objects_std=4.7),
        SegmentSpec(name="angle_2", condition=DAY, angle=angle_2,
                    length=length, objects_mean=19.2, objects_std=4.7),
        SegmentSpec(name="angle_3", condition=DAY, angle=angle_3,
                    length=length, objects_mean=19.2, objects_std=4.7),
    ]
    stream = VideoStream(segments, renderer=renderer, seed=seed)
    return DriftingDataset(name="Tokyo", stream=stream,
                           num_count_classes=8, count_bucket_width=5,
                           paper_stream_size=45_000, paper_sequences=3)


def make_slow_drift(scale: float = 100.0, seed: SeedLike = 3,
                    frame_size: int = 32,
                    transition_fraction: float = 0.5) -> DriftingDataset:
    """The slow-drift setting (Section 6.1.3): a day segment followed by a
    night segment whose leading frames blend gradually from day, like a live
    camera at dusk.

    Since PR 10 the stream is authored as a declarative drift script --
    a single smooth gradual lighting track
    (:func:`repro.scenarios.slow_drift_script`) lowered through the
    scenario compiler's transition strategy -- and compiles bit-identically
    to the hand-rolled day/night segment pair it replaces (pinned by
    ``tests/video/test_datasets.py``).  The script's ground-truth events
    ride along in ``metadata``.
    """
    # function-level import: repro.video.__init__ loads this module, and
    # repro.scenarios.video imports repro.video submodules, so a module-
    # level import here would be circular
    from repro.scenarios import (
        VideoProfile,
        compile_video,
        slow_drift_script,
    )
    if not 0.0 < transition_fraction <= 1.0:
        raise ConfigurationError(
            f"transition_fraction must be in (0, 1], got {transition_fraction}")
    length = _scaled(10_000, scale)
    transition = max(2, int(length * transition_fraction))
    script = slow_drift_script(frames=2 * length, transition=transition)
    compiled = compile_video(
        script, seed=seed,
        profile=VideoProfile(objects_mean=19.2, objects_std=4.7,
                             frame_size=frame_size))
    return DriftingDataset(name="TokyoLive", stream=compiled.stream,
                           num_count_classes=8, count_bucket_width=5,
                           paper_stream_size=20_000, paper_sequences=2,
                           metadata={"transition_frames": transition,
                                     "script": script.name,
                                     "events": compiled.events})


def all_datasets(scale: float = 100.0,
                 frame_size: int = 32) -> Dict[str, DriftingDataset]:
    """The three Table 5 datasets keyed by name."""
    return {
        "BDD": make_bdd(scale=scale, frame_size=frame_size),
        "Detrac": make_detrac(scale=scale, frame_size=frame_size),
        "Tokyo": make_tokyo(scale=scale, frame_size=frame_size),
    }
