"""Synthetic video substrate.

Stands in for the paper's BDD / Detrac / Tokyo datasets: a parametric scene
renderer produces pixel frames whose distribution shifts at known ground
truth drift points, with per-frame temporal correlation (objects persist and
move between frames) as in real video.

- :mod:`repro.video.objects` -- cars / buses with positions and motion.
- :mod:`repro.video.scenes` -- conditions (day/night/rain/snow) and camera
  angles; each defines a frame distribution.
- :mod:`repro.video.renderer` -- scene -> pixel array.
- :mod:`repro.video.stream` -- drifting video streams (abrupt and gradual).
- :mod:`repro.video.datasets` -- SyntheticBDD / Detrac / Tokyo builders.
- :mod:`repro.video.annotator` -- oracle annotator (Mask R-CNN substitute).
- :mod:`repro.video.features` -- downsampling / flattening helpers.
- :mod:`repro.video.frames` -- frame-carrier coercion helpers
  (``pixels_of`` / ``with_pixels``), shared by every pipeline layer.
"""

from repro.video.annotator import OracleAnnotator
from repro.video.frames import pixels_of, with_pixels
from repro.video.datasets import (
    DriftingDataset,
    make_bdd,
    make_detrac,
    make_slow_drift,
    make_tokyo,
)
from repro.video.objects import SceneObject
from repro.video.renderer import Renderer
from repro.video.scenes import CameraAngle, SceneCondition, SegmentSpec
from repro.video.stream import Frame, VideoStream

__all__ = [
    "SceneObject",
    "SceneCondition",
    "CameraAngle",
    "SegmentSpec",
    "Renderer",
    "Frame",
    "VideoStream",
    "DriftingDataset",
    "make_bdd",
    "make_detrac",
    "make_tokyo",
    "make_slow_drift",
    "OracleAnnotator",
    "pixels_of",
    "with_pixels",
]
