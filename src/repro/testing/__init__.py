"""Deterministic builders shared by test suites, benchmarks and scripts.

Everything here is a pure function of its seed arguments: the same
builders are called on both sides of every equivalence assertion (and
inside forked fleet workers or serving sessions), so any divergence a
consumer sees comes from the execution path under test, never from the
fixture.  Test conftests re-export these names; ``scripts/check.sh`` and
the benchmark harnesses import them directly so nothing outside the test
tree has to import a conftest.

The detector conformance kit lives in the
:mod:`repro.testing.conformance` submodule.  It is deliberately *not*
imported here: the kit's three-substrate check drives :mod:`repro.serve`,
and eagerly importing it would put every consumer of these builders --
including :mod:`repro.detectors.bench`, which the layer lint forbids from
reaching the serving layer -- downstream of the whole serving stack.
"""

from __future__ import annotations

import numpy as np

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.nonconformity import KNNDistance
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry
from repro.scenarios.compile import FEATURE_DIM, generate_plan

#: Latent dimensionality of the synthetic gaussian fleet (the scenario
#: compiler's latent space -- one source of truth).
DIM = FEATURE_DIM


class ConstantModel:
    """Predicts a fixed class; lets consumers identify which model ran."""

    def __init__(self, label: int):
        self.label = label

    def predict(self, frames):
        return np.full(np.asarray(frames).shape[0], self.label,
                       dtype=np.int64)


def make_bundle(name: str, centre: float, label: int, rng) -> ModelBundle:
    """A provisioned bundle around a gaussian reference at ``centre``."""
    sigma = rng.normal(centre, 1.0, size=(120, DIM))
    scores = KNNDistance(5).reference_scores(sigma)
    return ModelBundle(name=name, sigma=sigma, reference_scores=scores,
                       model=ConstantModel(label))


def make_registry(seed: int = 777) -> ModelRegistry:
    rng = np.random.default_rng(seed)
    return ModelRegistry([make_bundle("low", 0.0, 0, rng),
                          make_bundle("high", 6.0, 1, rng)])


def make_pipeline(seed: int = 0,
                  registry: ModelRegistry = None,
                  recorder=None,
                  monitor_factory=None) -> DriftAwareAnalytics:
    """One drift-aware pipeline over the two-bundle gaussian registry.

    ``monitor_factory`` backs the monitoring stage with a custom
    :class:`~repro.runtime.protocols.DriftMonitor` (ODIN, a statistical
    detector, ...) instead of the default Drift Inspector.
    """
    registry = registry if registry is not None else make_registry()
    config = PipelineConfig(
        selection_window=8,
        drift_inspector=DriftInspectorConfig(seed=seed))
    selector = MSBI(registry, MSBIConfig(window_size=8, seed=seed))
    return DriftAwareAnalytics(registry, "low", selector, config=config,
                               recorder=recorder,
                               monitor_factory=monitor_factory)


def gaussian_stream(seed: int, segments) -> np.ndarray:
    """Frames from consecutive ``(centre, length)`` gaussian segments.

    Back-compat shim over the scenario compiler: a segment list *is* a
    feature plan (``centre`` may also be a per-dimension tuple), and
    :func:`~repro.scenarios.compile.generate_plan` makes the exact RNG
    calls this function historically made, so every caller stays
    bit-identical.
    """
    return generate_plan(seed, list(segments), dim=DIM)


def assert_rerun_identical(benchmark: str, cell: str, first, rerun) -> None:
    """The accuracy benchmarks' shared determinism guard: re-score one
    cell after the full table and fail loudly if it moved."""
    if first != rerun:
        raise AssertionError(
            f"{benchmark} benchmark is not deterministic: {cell} "
            f"changed between runs")


def result_sig(result):
    """Everything a PipelineResult observable: bit-for-bit comparable."""
    return (
        [(r.frame_index, r.prediction, r.model) for r in result.records],
        [(d.frame_index, d.previous_model, d.selected_model, d.novel,
          d.selection_frames) for d in result.detections],
        result.invocations.state_dict(),
        result.simulated_ms,
        result.faults.as_dict(),
    )
