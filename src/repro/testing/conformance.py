"""The detector conformance kit: what every zoo entry must survive.

A drift detector that backs the runtime kernel's monitoring stage has to
honour several contracts at once: the structural
:class:`~repro.runtime.protocols.DriftMonitor` protocol, ``reset()``
re-arming, deterministic construction, a ``state_dict`` round-trip that
is an exact no-op mid-stream, and -- the strongest -- bit-identical
pipeline results across the execution substrates: sequential
``process``, chunked ``process_batched``, an unconstrained serve run
through the real scheduler, and a forked fleet run over the
shared-memory frame transport.  Each ``check_*`` function pins one of
those contracts for a single :class:`~repro.detectors.zoo.DetectorSpec`;
:func:`run_conformance` runs the whole battery.

Failures raise :class:`~repro.errors.ConformanceError` (an
``AssertionError`` subclass, so pytest renders it natively) with a
message naming the detector and the violated clause.  Third-party
detectors get certified the same way the built-ins are tested::

    from repro.detectors.zoo import DetectorSpec
    from repro.testing.conformance import run_conformance

    run_conformance(DetectorSpec(name="mine", family="custom",
                                 description="...", factory=build_mine))

This module lives outside ``repro/testing/__init__`` on purpose: the
three-substrate check imports :mod:`repro.serve`, and keeping that
import out of the package root keeps plain fixture consumers (the
benchmarks, :mod:`repro.detectors.bench`) upstream of the serving layer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConformanceError
from repro.parallel import FleetExecutor, FleetTask, stream_seed
from repro.runtime import MonitorStage, DriftMonitor, Snapshotable
from repro.serve import (
    DriftServer,
    SchedulerConfig,
    ServeConfig,
    SessionConfig,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.testing import gaussian_stream, make_pipeline, make_registry, \
    result_sig

#: The certification stream: long enough for every built-in detector --
#: including the slow starters (ODIN's temporary cluster, EDDM's error
#: gap baseline) -- to catch the shift within the post-onset window.
DETECT_SEGMENTS: Tuple[Tuple[float, int], ...] = ((0.0, 120), (6.0, 120))
DETECT_ONSET = 120
DETECT_SEED = 0

#: Mid-stream snapshot points for the round-trip check: one before the
#: drift onset (latent state only) and one after it (latched
#: ``drift_frame`` plus post-swap statistics must survive the trip).
ROUNDTRIP_SPLITS: Tuple[int, ...] = (60, 150)

_BATCH_SIZES: Tuple[int, ...] = (3, 16)


def _state_equal(left: object, right: object) -> bool:
    """Exact structural equality, treating numpy arrays bit-for-bit."""
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        left_arr, right_arr = np.asarray(left), np.asarray(right)
        return (left_arr.shape == right_arr.shape
                and left_arr.dtype == right_arr.dtype
                and bool(np.array_equal(left_arr, right_arr)))
    if isinstance(left, dict) and isinstance(right, dict):
        return (left.keys() == right.keys()
                and all(_state_equal(left[k], right[k]) for k in left))
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        return (len(left) == len(right)
                and all(_state_equal(a, b) for a, b in zip(left, right)))
    if type(left) is not type(right):
        return False
    return left == right


def _flags(monitor, frames) -> list:
    """Normalised per-frame drift verdicts (``drift_of`` handles both
    bool-returning and decision-returning monitors)."""
    return [bool(MonitorStage.drift_of(monitor.observe(frame)))
            for frame in frames]


def _fail(spec, clause: str, detail: str) -> None:
    raise ConformanceError(
        f"detector {spec.name!r} fails conformance [{clause}]: {detail}")


def serve_unconstrained(frames, seed: int, batch_size: int, factory):
    """Serve ``frames`` on one stream that can never shed or miss a
    deadline, returning the stream's PipelineResult.  This is the serve
    substrate of the bit-identity check (and of the kernel-equivalence
    tests, which import it from here)."""
    session = StreamSession(
        "cam", make_pipeline(seed=seed, monitor_factory=factory),
        SessionConfig(queue_capacity=1 << 20, deadline_ms=1e12))
    arrivals = generate_arrivals(
        frames, WorkloadConfig(rate_fps=capacity_fps()), stream_id="cam",
        deadline_ms=1e12, seed=seed + 1)
    server = DriftServer([session], ServeConfig(
        scheduler=SchedulerConfig(batch_size=batch_size)))
    return server.run(arrivals).pipeline_results["cam"]


# ----------------------------------------------------------------------
# the battery
# ----------------------------------------------------------------------
def check_protocol(spec, bundle) -> None:
    """The built monitor satisfies DriftMonitor + Snapshotable, and its
    rollback qualification matches what the spec advertises."""
    monitor = spec.build(bundle)
    if not isinstance(monitor, DriftMonitor):
        _fail(spec, "protocol", "monitor does not satisfy DriftMonitor")
    if not isinstance(monitor, Snapshotable):
        _fail(spec, "protocol",
              "monitor is not Snapshotable; checkpoint/restore and the "
              "optimistic batched path both need state_dict()")
    supports = MonitorStage(monitor).supports_rollback
    if supports != spec.rollback:
        _fail(spec, "protocol",
              f"spec advertises rollback={spec.rollback} but the kernel "
              f"sees supports_rollback={supports} (observe_batch "
              f"{'present' if hasattr(monitor, 'observe_batch') else 'absent'})")


def check_reset(spec, bundle, frames=None) -> None:
    """``reset()`` clears the latched drift verdict and re-arms."""
    frames = frames if frames is not None else gaussian_stream(
        DETECT_SEED, list(DETECT_SEGMENTS))
    monitor = spec.build(bundle)
    for frame in frames:
        monitor.observe(frame)
        if monitor.drift_detected:
            break
    if not monitor.drift_detected:
        _fail(spec, "reset",
              f"monitor never latched drift on the certification stream "
              f"({len(frames)} frames, onset {DETECT_ONSET}); cannot "
              f"exercise reset()")
    monitor.reset()
    if monitor.drift_detected:
        _fail(spec, "reset", "drift_detected still True after reset()")
    if monitor.drift_frame is not None:
        _fail(spec, "reset",
              f"drift_frame still {monitor.drift_frame!r} after reset()")


def check_seed_determinism(spec, bundle, frames=None) -> None:
    """Two monitors built from the same bundle produce identical
    decision sequences -- and end in bit-identical state -- on the same
    stream (no hidden entropy).

    The final ``state_dict`` comparison is the sharp edge: a composite
    monitor whose *internal routing* consumes hidden RNG (e.g. a cascade
    escalating at random) can emit coincidentally equal drift flags while
    its inner detectors saw different frame subsequences; their
    accumulated state (a martingale, a window buffer) is a continuous
    function of exactly which frames were observed, so it diverges with
    certainty.
    """
    frames = frames if frames is not None else gaussian_stream(
        DETECT_SEED, list(DETECT_SEGMENTS))
    first, second = spec.build(bundle), spec.build(bundle)
    if _flags(first, frames) != _flags(second, frames):
        _fail(spec, "determinism",
              "two monitors from the same bundle diverged on the same "
              "stream")
    if first.drift_frame != second.drift_frame:
        _fail(spec, "determinism",
              f"drift_frame diverged: {first.drift_frame} vs "
              f"{second.drift_frame}")
    if isinstance(first, Snapshotable) and isinstance(second, Snapshotable):
        if not _state_equal(first.state_dict(), second.state_dict()):
            _fail(spec, "determinism",
                  "two monitors from the same bundle agree on every drift "
                  "flag but end in different state: something inside "
                  "consumes hidden entropy")


def check_state_roundtrip(spec, bundle, frames=None,
                          splits: Sequence[int] = ROUNDTRIP_SPLITS) -> None:
    """``load_state_dict(state_dict())`` is an exact no-op mid-stream.

    At each split point the monitor is snapshotted into a freshly built
    twin; the snapshot must reproduce bit-identically
    (``state_dict()`` round-trips) and both monitors must agree on every
    subsequent frame.
    """
    frames = frames if frames is not None else gaussian_stream(
        DETECT_SEED, list(DETECT_SEGMENTS))
    for split in splits:
        original = spec.build(bundle)
        for frame in frames[:split]:
            original.observe(frame)
        state = original.state_dict()
        restored = spec.build(bundle)
        restored.load_state_dict(state)
        if not _state_equal(restored.state_dict(), state):
            _fail(spec, "state-roundtrip",
                  f"state_dict() after load_state_dict() is not "
                  f"bit-identical at split {split}")
        if _flags(original, frames[split:]) != _flags(restored,
                                                      frames[split:]):
            _fail(spec, "state-roundtrip",
                  f"restored monitor diverged from the original after "
                  f"split {split}")
        if original.drift_frame != restored.drift_frame:
            _fail(spec, "state-roundtrip",
                  f"drift_frame diverged after split {split}: "
                  f"{original.drift_frame} vs {restored.drift_frame}")


def check_three_substrates(spec, frames=None, seed: int = DETECT_SEED,
                           batch_sizes: Sequence[int] = _BATCH_SIZES) -> None:
    """Sequential, batched (several chunkings) and served runs emit
    bit-identical PipelineResults with this detector on the monitoring
    stage."""
    frames = frames if frames is not None else gaussian_stream(
        seed, list(DETECT_SEGMENTS))
    signature = result_sig(make_pipeline(
        seed=seed, monitor_factory=spec.factory).process(frames))
    for batch_size in batch_sizes:
        batched = make_pipeline(
            seed=seed, monitor_factory=spec.factory).process_batched(
                frames, batch_size=batch_size)
        if result_sig(batched) != signature:
            _fail(spec, "three-substrates",
                  f"process_batched(batch_size={batch_size}) diverged "
                  f"from sequential process")
    served = serve_unconstrained(frames, seed, _BATCH_SIZES[-1],
                                 spec.factory)
    if result_sig(served) != signature:
        _fail(spec, "three-substrates",
              "unconstrained serve run diverged from sequential process")


def check_fleet(spec, frames=None, seed: int = DETECT_SEED) -> None:
    """A forked fleet run (two workers, shared-memory frame transport,
    batched kernel inside each worker) is bit-identical to sequential
    ``process`` with the same derived per-stream seeds.  This is the
    fourth substrate: it proves the detector's state survives being
    driven from zero-copy shared-memory frame views in a subprocess."""
    frames = frames if frames is not None else gaussian_stream(
        seed, list(DETECT_SEGMENTS))
    tasks = [FleetTask(stream_id="cam-a", frames=frames),
             FleetTask(stream_id="cam-b", frames=frames[::-1])]

    def factory(task, task_seed):
        return make_pipeline(seed=task_seed, monitor_factory=spec.factory)

    expected = [
        result_sig(make_pipeline(
            seed=stream_seed(seed, task.stream_id),
            monitor_factory=spec.factory).process(task.frames))
        for task in tasks]
    executor = FleetExecutor(factory, workers=2, base_seed=seed,
                             batch_size=_BATCH_SIZES[-1], transport="shm")
    got = [result_sig(entry.result) for entry in executor.run(tasks)]
    if got != expected:
        diverged = [task.stream_id for task, want, have
                    in zip(tasks, expected, got) if want != have]
        _fail(spec, "fleet",
              f"forked fleet run over the shm transport diverged from "
              f"sequential process on stream(s) {diverged}")


def check_detects(spec, frames=None, onset: Optional[int] = None,
                  seed: int = DETECT_SEED) -> None:
    """The certification is not vacuous: through the full pipeline the
    detector catches the reference -> shifted transition at or after the
    onset and drives a model swap."""
    frames = frames if frames is not None else gaussian_stream(
        seed, list(DETECT_SEGMENTS))
    onset = DETECT_ONSET if onset is None else onset
    result = make_pipeline(
        seed=seed, monitor_factory=spec.factory).process(frames)
    if not result.detections:
        _fail(spec, "detects", "no detections on the certification stream")
    first = result.detections[0].frame_index
    if first < onset:
        _fail(spec, "detects",
              f"first detection at frame {first} precedes the onset "
              f"({onset}): false alarm on the reference segment")
    if result.records[-1].model != "high":
        _fail(spec, "detects",
              f"pipeline never swapped to the post-drift model "
              f"(final model {result.records[-1].model!r})")


def run_conformance(spec, bundle=None) -> None:
    """Run the full battery for one spec; raises
    :class:`ConformanceError` on the first violated clause."""
    bundle = bundle if bundle is not None else make_registry().get("low")
    frames = gaussian_stream(DETECT_SEED, list(DETECT_SEGMENTS))
    check_protocol(spec, bundle)
    check_reset(spec, bundle, frames)
    check_seed_determinism(spec, bundle, frames)
    check_state_roundtrip(spec, bundle, frames)
    check_three_substrates(spec, frames)
    check_fleet(spec, frames)
    check_detects(spec, frames)
