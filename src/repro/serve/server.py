"""The deterministic multi-tenant serving loop (:class:`DriftServer`).

A :class:`DriftServer` multiplexes many tenants' drift-aware pipelines
over one simulated inference backend.  It is a discrete-event simulation
in the same virtual time the rest of the repo charges
(:class:`~repro.sim.clock.SimulatedClock` against a
:class:`~repro.sim.costs.CostProfile`), so every run is a pure function
of ``(sessions, arrivals, config)`` -- replayable bit for bit, with no
wall-clock anywhere in the results.

The loop alternates two phases:

1. **Admission** -- every arrival due by the current virtual time passes
   the session's :class:`~repro.faults.guard.FrameGuard` (malformed
   frames are quarantined at the edge), then its admission
   :class:`~repro.faults.guard.CircuitBreaker` (opened by consecutive
   hard sheds, it fast-fails arrivals until the queue drains), then the
   bounded queue's load-shedding policy.  ``degrade`` overflows are
   served immediately on the cheap pass (prediction only, no drift
   inspection), charging only the degraded cost.  Before a frame is
   queued, the :class:`~repro.serve.overload.OverloadController` checks
   deadline feasibility: arrivals whose projected full-path completion
   overruns their deadline are diverted by controller state -- degraded
   while DEGRADED, shed while SHEDDING, rejected otherwise -- so the
   queues only ever hold work the backend can finish in time.
2. **Service** -- the :class:`~repro.serve.scheduler.DeadlineScheduler`
   forms a cross-stream micro-batch from the queue heads; the batch is
   grouped by stream and each group is fed to that stream's pipeline via
   :meth:`~repro.core.pipeline.DriftAwareAnalytics.step_batch`, which is
   bit-identical to sequential processing for any chunking -- so a
   single unconstrained stream served here reproduces
   :meth:`~repro.core.pipeline.DriftAwareAnalytics.process_batched`
   exactly (the property suite pins this).

Backend time charges the full per-frame monitor cost for batched frames,
the degraded cost for degrade-path frames, a per-batch overhead, and an
``serve_idle`` ledger entry while waiting for arrivals; drift-resolution
work (selection / retraining) stays on each pipeline's own clock, i.e.
the backend models the data path, not the control plane.  Every queue and
scheduler decision is surfaced through ``repro.obs``: arrival / shed /
degrade counters, per-stream queue-depth gauges, latency and batch-size
histograms, and logical events for sheds, backpressure transitions and
breaker trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ServeError
from repro.faults.guard import QUARANTINED
from repro.obs.metrics import DEFAULT_MS_BUCKETS
from repro.obs.recorder import NULL_RECORDER
from repro.serve.arrivals import (
    DEGRADED_FRAME_OPS,
    MONITOR_FRAME_OPS,
    FrameArrival,
    capacity_fps,
    frame_cost_ms,
)
from repro.serve.overload import (
    DEGRADED,
    NORMAL,
    SHEDDING,
    OverloadConfig,
    OverloadController,
)
from repro.serve.queues import DEGRADE, ENQUEUED, SHED_NEWEST, SHED_OLDEST
from repro.serve.report import ServeResult, StreamSLO
from repro.serve.scheduler import DeadlineScheduler, SchedulerConfig
from repro.serve.session import SessionRegistry, StreamSession
from repro.sim.clock import SimulatedClock
from repro.sim.costs import CostProfile, PAPER_COSTS

#: Fixed buckets for the micro-batch-size histogram.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Tier-0 suspicion boundaries (reference-sigma units) for the
#: degraded-pass screen histogram.
_SUSPICION_BUCKETS = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)

#: Tolerance when comparing virtual timestamps (pure float accumulation).
_EPS = 1e-9


@dataclass
class ServeConfig:
    """Server-level knobs (per-tenant knobs live in ``SessionConfig``)."""

    batch_overhead_ms: float = 0.5
    shed_expired: bool = False
    profile: Optional[CostProfile] = None
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    monitor_ops: Tuple[str, ...] = MONITOR_FRAME_OPS
    degraded_ops: Tuple[str, ...] = DEGRADED_FRAME_OPS

    def __post_init__(self) -> None:
        if self.batch_overhead_ms < 0:
            raise ConfigurationError(
                f"batch_overhead_ms must be non-negative: "
                f"{self.batch_overhead_ms}")


class DriftServer:
    """Serve many tenants' streams over one simulated backend.

    Parameters
    ----------
    sessions:
        A :class:`SessionRegistry` or an iterable of
        :class:`StreamSession`; registration order is the deterministic
        tie-break everywhere.
    config:
        :class:`ServeConfig`; ``None`` uses the defaults.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder`, bound to the
        server's virtual clock.  Recording is passive: attaching one
        cannot change any serving decision or result.
    """

    def __init__(self,
                 sessions: Union[SessionRegistry, Iterable[StreamSession]],
                 config: Optional[ServeConfig] = None,
                 recorder: Optional[object] = None) -> None:
        self.registry = (sessions if isinstance(sessions, SessionRegistry)
                         else SessionRegistry(list(sessions)))
        if len(self.registry) == 0:
            raise ConfigurationError("at least one session is required")
        self.config = config or ServeConfig()
        self.profile = self.config.profile or PAPER_COSTS
        self.clock = SimulatedClock(self.profile)
        self.scheduler = DeadlineScheduler(self.config.scheduler)
        self.controller = OverloadController(self.config.overload)
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.obs.bind_clock(self.clock)
        self._c_arrivals = self.obs.counter("serve.arrivals")
        self._c_admitted = self.obs.counter("serve.admitted")
        self._c_processed = self.obs.counter("serve.processed")
        self._c_degraded = self.obs.counter("serve.degraded")
        self._c_screened = self.obs.counter("serve.degraded_screened")
        self._h_suspicion = self.obs.histogram("serve.screen_suspicion",
                                               _SUSPICION_BUCKETS)
        self._c_shed = self.obs.counter("serve.shed")
        self._c_rejected = self.obs.counter("serve.rejected")
        self._c_infeasible = self.obs.counter("serve.rejected_infeasible")
        self._c_transitions = self.obs.counter("serve.overload_transitions")
        self._c_batches = self.obs.counter("serve.batches")
        self._c_misses = self.obs.counter("serve.deadline_misses")
        self._h_latency = self.obs.histogram("serve.latency_ms",
                                             DEFAULT_MS_BUCKETS)
        self._h_batch = self.obs.histogram("serve.batch_frames",
                                           _BATCH_BUCKETS)

    # ------------------------------------------------------------------
    @property
    def frame_cost_ms(self) -> float:
        return frame_cost_ms(self.profile, self.config.monitor_ops)

    @property
    def degraded_cost_ms(self) -> float:
        return frame_cost_ms(self.profile, self.config.degraded_ops)

    @property
    def capacity_fps(self) -> float:
        """Sustainable full-path backend throughput, frames/second."""
        return capacity_fps(self.profile, self.config.monitor_ops)

    # ------------------------------------------------------------------
    def _merge(self, arrivals: Iterable[FrameArrival]) -> List[FrameArrival]:
        """One deterministic timeline from per-stream traces."""
        merged = list(arrivals)
        for arrival in merged:
            if arrival.stream_id not in self.registry:
                raise ServeError(
                    f"arrival for unregistered stream "
                    f"{arrival.stream_id!r}; registered: "
                    f"{self.registry.ids()}")
            if arrival.arrival_ms < 0:
                raise ServeError(
                    f"arrival_ms must be non-negative, got "
                    f"{arrival.arrival_ms} on {arrival.stream_id!r}")
        order = {sid: i for i, sid in enumerate(self.registry.ids())}
        merged.sort(key=lambda a: (a.arrival_ms, order[a.stream_id], a.seq))
        last_seq: Dict[str, int] = {}
        for arrival in merged:
            previous = last_seq.get(arrival.stream_id)
            if previous is not None and arrival.seq <= previous:
                raise ServeError(
                    f"stream {arrival.stream_id!r} arrivals are out of "
                    f"order: seq {arrival.seq} after {previous}")
            last_seq[arrival.stream_id] = arrival.seq
        return merged

    def _now(self) -> float:
        return self.clock.elapsed_ms - self._t0

    def _queue_gauge(self, session: StreamSession) -> None:
        self.obs.gauge(
            f"serve.queue_depth.{session.stream_id}").set(
                session.queue.depth)

    def _note_backpressure(self, session: StreamSession) -> None:
        transition = session.queue.update_backpressure()
        if transition is None:
            return
        kind = "backpressure_on" if transition else "backpressure_off"
        self.obs.event(kind, stream=session.stream_id,
                       depth=session.queue.depth)

    def _wire_breaker(self, session: StreamSession) -> None:
        stream_id = session.stream_id

        def on_trip(breaker) -> None:
            self.obs.event("breaker_open", stream=stream_id,
                           failures=breaker.failures, trips=breaker.trips)

        def on_close(breaker) -> None:
            self.obs.event("breaker_close", stream=stream_id,
                           trips=breaker.trips)

        session.breaker.on_trip = on_trip
        session.breaker.on_close = on_close

    # ------------------------------------------------------------------
    # overload control: pressure signals, feasibility, state transitions
    # ------------------------------------------------------------------
    def _active_weight(self) -> float:
        """Total weight of streams with a backlog (the competition any
        newly queued frame faces for the backend)."""
        return sum(session.config.weight for session in self.registry
                   if session.queue.depth > 0)

    def _eta_ms(self, session: StreamSession,
                active_weight: Optional[float] = None) -> float:
        """Projected completion delay for one more frame of ``session``:
        its queue (plus the new frame) drains at the stream's weighted
        max-min share of the backend, plus amortised batch overhead."""
        weight = session.config.weight
        active = active_weight if active_weight is not None \
            else self._active_weight()
        if session.queue.depth == 0:
            active += weight
        share = weight / active
        frames = session.queue.depth + 1
        batches = -(-frames // max(1, self.config.scheduler.batch_size))
        return (frames * self.frame_cost_ms / share
                + batches * self.config.batch_overhead_ms)

    def _load_pressure(self) -> float:
        """Worst per-stream pressure: queue occupancy or projected
        completion over the deadline budget, whichever is higher."""
        pressure = 0.0
        active = self._active_weight()
        for session in self.registry:
            occupancy = session.queue.depth / session.queue.capacity
            slack = self._eta_ms(session, active) / session.config.deadline_ms
            pressure = max(pressure, occupancy, slack)
        return pressure

    def _update_controller(self) -> None:
        now = self._now()
        transition = self.controller.update(now, self._load_pressure())
        if transition is None:
            return
        old, new = transition
        self._c_transitions.inc()
        self.obs.event("overload_transition", previous=old, state=new,
                       now_ms=now,
                       degrade_share=self.controller.degrade_share())
        self.obs.gauge("serve.overload_state").set(
            float((NORMAL, DEGRADED, SHEDDING).index(new)))

    def _reject_infeasible(self, session: StreamSession,
                           arrival: FrameArrival, eta_ms: float) -> None:
        session.stats.rejected += 1
        session.stats.rejected_infeasible += 1
        self._c_rejected.inc()
        self._c_infeasible.inc()
        self.obs.event("frame_rejected", stream=session.stream_id,
                       seq=arrival.seq, reason="infeasible",
                       eta_ms=eta_ms)

    def _admit_infeasible(self, session: StreamSession,
                          arrival: FrameArrival, eta_ms: float) -> None:
        """Route an arrival the full path cannot serve in time.

        The controller state decides: while DEGRADED a degradable frame
        takes the cheap pass immediately (if even that fits the budget);
        while SHEDDING degradable frames are dropped outright (the cheap
        pass itself is saturating the backend); everything else --
        including every frame of a tenant with ``degraded_allowed=False``
        -- is rejected at arrival instead of being queued, served late
        and counted as a miss.
        """
        state = self.controller.state
        budget = arrival.deadline_ms - self._now()
        if state == DEGRADED and session.config.degraded_allowed \
                and budget > self.degraded_cost_ms + _EPS:
            self._serve_degraded(session, arrival, reason="overload")
        elif state == SHEDDING and session.config.degraded_allowed:
            self._shed(session, arrival, "overload")
        else:
            self._reject_infeasible(session, arrival, eta_ms)

    # ------------------------------------------------------------------
    def _complete(self, session: StreamSession, arrival: FrameArrival,
                  completion_ms: float) -> None:
        """Latency / deadline accounting for one served frame."""
        latency = completion_ms - arrival.arrival_ms
        session.stats.latencies_ms.append(latency)
        self._h_latency.observe(latency)
        if completion_ms > arrival.deadline_ms + _EPS:
            session.stats.deadline_misses += 1
            self._c_misses.inc()

    def _shed(self, session: StreamSession, arrival: FrameArrival,
              reason: str) -> None:
        session.stats.count_shed(reason)
        self._c_shed.inc()
        self.obs.event("frame_shed", stream=session.stream_id,
                       seq=arrival.seq, reason=reason)

    def _serve_degraded(self, session: StreamSession,
                        arrival: FrameArrival,
                        reason: str = "queue-policy") -> None:
        """The cheap fast-lane pass: predict without drift inspection.

        This is the *only* place degraded frames are counted and
        completed, whether the queue's ``degrade`` policy or the
        overload controller diverted them -- so a frame can never be
        double-counted as both degraded and completed.
        """
        for op in self.config.degraded_ops:
            self.clock.charge(op)
        prediction = session.degraded_predict(arrival.frame)
        # tier-0 screening: sessions backed by a cascade (or the bare
        # pixel-stat screen) still watch degraded frames for drift via a
        # stateless suspicion peek -- observability only, no clock charge
        # and no monitor state touched, so the full path stays bit-exact
        suspicion = session.screen_degraded(arrival.frame)
        if suspicion is not None:
            self._c_screened.inc()
            self._h_suspicion.observe(suspicion)
        session.stats.degraded += 1
        self._c_degraded.inc()
        self.obs.event("frame_degraded", stream=session.stream_id,
                       seq=arrival.seq, prediction=prediction,
                       reason=reason)
        self._complete(session, arrival, self._now())
        self.controller.note_degraded(self.degraded_cost_ms, self._now())

    def _admit_one(self, arrival: FrameArrival) -> None:
        session = self.registry.get(arrival.stream_id)
        session.stats.arrivals += 1
        self._c_arrivals.inc()
        report = session.guard.admit(arrival.frame)
        if report.status == QUARANTINED:
            session.stats.rejected += 1
            self._c_rejected.inc()
            self.obs.event("frame_rejected", stream=session.stream_id,
                           seq=arrival.seq, reason=report.reason)
            return
        if session.breaker.is_open:
            self._shed(session, arrival, "breaker")
            return
        if self.config.overload.enabled:
            self._update_controller()
            eta = self._eta_ms(session)
            if not session.deadline_feasible(arrival, self._now(), eta,
                                             eps=_EPS):
                self._admit_infeasible(session, arrival, eta)
                self._queue_gauge(session)
                return
        verdict = session.queue.offer(arrival)
        if verdict.status == ENQUEUED:
            session.stats.admitted += 1
            self._c_admitted.inc()
            session.breaker.record_success()
        elif verdict.status == SHED_OLDEST:
            session.stats.admitted += 1
            self._c_admitted.inc()
            self._shed(session, verdict.shed, "drop-oldest")
            session.breaker.record_failure()
        elif verdict.status == SHED_NEWEST:
            self._shed(session, arrival, "drop-newest")
            session.breaker.record_failure()
        else:
            assert verdict.status == DEGRADE
            self._serve_degraded(session, arrival)
        self._note_backpressure(session)
        self._queue_gauge(session)

    # ------------------------------------------------------------------
    def _shed_expired(self, now: float) -> None:
        for session in self.registry:
            changed = False
            while (session.queue.depth > 0
                   and session.queue.peek().deadline_ms < now - _EPS):
                self._shed(session, session.queue.pop(), "expired")
                changed = True
            if changed:
                self._note_backpressure(session)
                self._queue_gauge(session)

    def _serve_batch(self, now: float) -> int:
        """Form and execute one micro-batch; returns frames served."""
        batch = self.scheduler.next_batch(
            self.registry, now,
            frame_cost_ms=self.frame_cost_ms,
            overhead_ms=self.config.batch_overhead_ms)
        if not batch:
            return 0
        with self.obs.span("serve.batch"):
            self.clock.charge_ms("serve_batch_overhead",
                                 self.config.batch_overhead_ms)
            groups: Dict[str, List[FrameArrival]] = {}
            for session, arrival in batch:
                groups.setdefault(session.stream_id, []).append(arrival)
            for stream_id, group in groups.items():
                session = self.registry.get(stream_id)
                frames = np.stack([a.frame for a in group])
                with self.obs.span(f"serve.stream.{stream_id}"):
                    session.pipeline.step_batch(frames,
                                                batch_size=len(group))
                for op in self.config.monitor_ops:
                    self.clock.charge(op, times=len(group))
                session.stats.processed += len(group)
                self._c_processed.inc(len(group))
                session.next_seq = group[-1].seq + 1
        completion = self._now()
        for session, arrival in batch:
            self._complete(session, arrival, completion)
        self._c_batches.inc()
        self._h_batch.observe(float(len(batch)))
        for session in {id(s): s for s, _ in batch}.values():
            if (session.breaker.is_open
                    and session.queue.depth <= session.queue.low_watermark):
                session.breaker.record_success()
            self._note_backpressure(session)
            self._queue_gauge(session)
        if self.config.overload.enabled:
            self._update_controller()
        return len(batch)

    # ------------------------------------------------------------------
    def run(self, arrivals: Iterable[FrameArrival]) -> ServeResult:
        """Serve ``arrivals`` to completion; returns the SLO result.

        The loop admits everything due by the current virtual time, then
        serves one micro-batch (or idles until the next arrival when all
        queues are empty), until the timeline is exhausted and every
        queue has drained.  Pipelines are flushed at the end exactly as
        ``process_batched`` flushes, so per-stream
        :class:`~repro.core.pipeline.PipelineResult` objects come back
        inside the :class:`~repro.serve.report.ServeResult`.
        """
        timeline = self._merge(arrivals)
        self._t0 = self.clock.elapsed_ms
        for session in self.registry:
            session.begin()
            self._wire_breaker(session)
        self.obs.event("serve_start", sessions=len(self.registry),
                       arrivals=len(timeline))
        self.obs.gauge("serve.sessions").set(len(self.registry))
        i, n = 0, len(timeline)
        while True:
            while (i < n
                   and timeline[i].arrival_ms <= self._now() + _EPS):
                self._admit_one(timeline[i])
                i += 1
            if self.config.shed_expired:
                self._shed_expired(self._now())
            if all(session.queue.depth == 0 for session in self.registry):
                if i >= n:
                    break
                gap = timeline[i].arrival_ms - self._now()
                if gap > 0:
                    self.clock.charge_ms("serve_idle", gap)
                continue
            self._serve_batch(self._now())
        makespan = self._now()
        pipeline_results = {}
        streams: Dict[str, StreamSLO] = {}
        for session in self.registry:
            pipeline_results[session.stream_id] = session.finish()
            slo = StreamSLO.from_session(session)
            streams[session.stream_id] = slo
            self.obs.gauge(
                f"serve.goodput_fps.{session.stream_id}").set(
                    slo.goodput_fps(makespan))
        self.obs.event("serve_done", makespan_ms=makespan,
                       overload_state=self.controller.state,
                       overload_transitions=self.controller.transitions)
        return ServeResult(
            streams=streams,
            pipeline_results=pipeline_results,
            makespan_ms=makespan,
            capacity_fps=self.capacity_fps,
            frame_cost_ms=self.frame_cost_ms,
            degraded_cost_ms=self.degraded_cost_ms,
            batch_overhead_ms=self.config.batch_overhead_ms,
            backend_ledger=self.clock.ledger(),
            overload_transitions=self.controller.transitions,
        )
