"""repro.serve -- deterministic multi-tenant serving for drift-aware pipelines.

The subsystem multiplexes many tenants' drift-aware analytics pipelines
over one simulated inference backend, in virtual time:

- :mod:`repro.serve.arrivals` -- seeded open-loop workload generation
  (Poisson / bursty / diurnal arrival processes) and backend cost maths;
- :mod:`repro.serve.queues` -- bounded per-stream queues with explicit
  backpressure and the load-shedding policies;
- :mod:`repro.serve.session` -- per-tenant state (pipeline, priority,
  deadline budget, guard, circuit breaker) and the session registry;
- :mod:`repro.serve.sharded` -- :class:`ShardedRegistry`, the registry
  facade that partitions thousands of sessions into deterministic
  CRC32-placed shards while preserving global registration order;
- :mod:`repro.serve.scheduler` -- deadline-aware (EDF + priority +
  aging) cross-stream micro-batch formation with weighted max-min
  fairness caps;
- :mod:`repro.serve.overload` -- the NORMAL -> DEGRADED -> SHEDDING
  overload controller (hysteresis state machine over serving pressure);
- :mod:`repro.serve.server` -- the discrete-event serving loop;
- :mod:`repro.serve.report` -- SLO accounting and the
  ``BENCH_serve.json`` schema contract.

Everything is a pure function of ``(sessions, arrivals, config)``; the
unconstrained single-stream serve path is bit-identical to
:meth:`repro.core.pipeline.DriftAwareAnalytics.process_batched`.
"""

from repro.serve.arrivals import (
    ARRIVAL_PATTERNS,
    DEGRADED_FRAME_OPS,
    MONITOR_FRAME_OPS,
    FrameArrival,
    WorkloadConfig,
    capacity_fps,
    frame_cost_ms,
    generate_arrivals,
)
from repro.serve.queues import (
    SHED_POLICIES,
    BoundedFrameQueue,
    QueueVerdict,
)
from repro.serve.overload import (
    OVERLOAD_STATES,
    OverloadConfig,
    OverloadController,
)
from repro.serve.report import (
    SERVE_SCHEMA,
    ServeResult,
    StreamSLO,
    load_serve_report,
    upgrade_serve_report,
    validate_serve_report,
    write_serve_report,
)
from repro.serve.scheduler import (
    FAIRNESS_POLICIES,
    DeadlineScheduler,
    SchedulerConfig,
)
from repro.serve.server import DriftServer, ServeConfig
from repro.serve.sharded import ShardedRegistry
from repro.serve.session import (
    SessionConfig,
    SessionRegistry,
    SessionStats,
    StreamSession,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "DEGRADED_FRAME_OPS",
    "FAIRNESS_POLICIES",
    "MONITOR_FRAME_OPS",
    "OVERLOAD_STATES",
    "SHED_POLICIES",
    "SERVE_SCHEMA",
    "BoundedFrameQueue",
    "DeadlineScheduler",
    "DriftServer",
    "FrameArrival",
    "OverloadConfig",
    "OverloadController",
    "QueueVerdict",
    "SchedulerConfig",
    "ServeConfig",
    "ServeResult",
    "SessionConfig",
    "ShardedRegistry",
    "SessionRegistry",
    "SessionStats",
    "StreamSLO",
    "StreamSession",
    "WorkloadConfig",
    "capacity_fps",
    "frame_cost_ms",
    "generate_arrivals",
    "load_serve_report",
    "upgrade_serve_report",
    "validate_serve_report",
    "write_serve_report",
]
