"""Bounded per-stream frame queues with explicit backpressure.

Each :class:`~repro.serve.session.StreamSession` owns one
:class:`BoundedFrameQueue`.  The queue never blocks -- the workload is
open-loop, so an arrival that cannot be absorbed must be resolved *now*
by the configured load-shedding policy:

- ``drop-newest`` -- the arriving frame is shed;
- ``drop-oldest`` -- the stalest queued frame is shed and the arrival is
  admitted (freshness-preserving, the usual choice for live video);
- ``degrade`` -- the arriving frame is diverted to the cheap degraded
  pass (prediction only, no drift inspection) instead of queueing for
  the full path.

Backpressure is a hysteresis signal over the queue depth: it turns on
when the depth reaches ``high_watermark`` and off once the depth falls
back to ``low_watermark``.  The server surfaces every transition as a
``repro.obs`` event, and admission gating (the per-session circuit
breaker) keys off the same signal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import ConfigurationError
from repro.serve.arrivals import FrameArrival

SHED_POLICIES = ("drop-oldest", "drop-newest", "degrade")

#: Admission verdicts.
ENQUEUED = "enqueued"
SHED_NEWEST = "shed-newest"
SHED_OLDEST = "shed-oldest"
DEGRADE = "degrade"


@dataclass
class QueueVerdict:
    """Outcome of offering one arrival to a bounded queue.

    ``admitted`` is the frame now queued for the full path (``None`` when
    the arrival was shed or degraded); ``shed`` is the frame the policy
    sacrificed (the arrival itself under ``drop-newest``, the previous
    head under ``drop-oldest``); ``degraded`` is the frame diverted to
    the cheap pass.  Exactly one field is set per overflow, all of
    ``shed`` / ``degraded`` are ``None`` on a plain admit.
    """

    status: str
    admitted: Optional[FrameArrival] = None
    shed: Optional[FrameArrival] = None
    degraded: Optional[FrameArrival] = None


class BoundedFrameQueue:
    """FIFO of pending :class:`FrameArrival` with a hard capacity.

    ``high_watermark`` / ``low_watermark`` are depths (inclusive) at which
    the backpressure signal switches on / off; they default to the full
    capacity and half of it.
    """

    def __init__(self, capacity: int, policy: str = "drop-oldest",
                 high_watermark: Optional[int] = None,
                 low_watermark: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive: {capacity}")
        if policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {SHED_POLICIES}, got {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self.high_watermark = (high_watermark if high_watermark is not None
                               else capacity)
        self.low_watermark = (low_watermark if low_watermark is not None
                              else capacity // 2)
        if not 0 < self.high_watermark <= capacity:
            raise ConfigurationError(
                f"high_watermark must be in (0, capacity]: "
                f"{self.high_watermark}")
        if not 0 <= self.low_watermark < self.high_watermark:
            raise ConfigurationError(
                f"low_watermark must be in [0, high_watermark): "
                f"{self.low_watermark}")
        self._frames: Deque[FrameArrival] = deque()
        self._backpressure = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames)

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def under_backpressure(self) -> bool:
        return self._backpressure

    def peek(self) -> Optional[FrameArrival]:
        return self._frames[0] if self._frames else None

    def pop(self) -> FrameArrival:
        """Dequeue the head (oldest) frame for processing."""
        if not self._frames:
            raise ConfigurationError("pop() on an empty queue")
        return self._frames.popleft()

    # ------------------------------------------------------------------
    def offer(self, arrival: FrameArrival) -> QueueVerdict:
        """Admit ``arrival`` or resolve the overflow per the policy."""
        if len(self._frames) < self.capacity:
            self._frames.append(arrival)
            return QueueVerdict(ENQUEUED, admitted=arrival)
        if self.policy == "drop-newest":
            return QueueVerdict(SHED_NEWEST, shed=arrival)
        if self.policy == "drop-oldest":
            evicted = self._frames.popleft()
            self._frames.append(arrival)
            return QueueVerdict(SHED_OLDEST, admitted=arrival, shed=evicted)
        return QueueVerdict(DEGRADE, degraded=arrival)

    def update_backpressure(self) -> Optional[bool]:
        """Advance the hysteresis signal; returns the new state on a
        transition (``True`` = on, ``False`` = off) and ``None`` when the
        signal did not change.  Call after any depth change."""
        depth = len(self._frames)
        if not self._backpressure and depth >= self.high_watermark:
            self._backpressure = True
            return True
        if self._backpressure and depth <= self.low_watermark:
            self._backpressure = False
            return False
        return None
