"""Deterministic open-loop workload generation.

The paper's serving setting (Fig. 1) is open-loop: cameras emit frames on
their own schedule regardless of how loaded the inference backend is, so
overload has to be absorbed by queues and shedding rather than by slowing
the producer.  :func:`generate_arrivals` stamps a finite frame stack with
arrival timestamps drawn from a seeded :mod:`repro.rng` stream -- the same
frames and seed always produce the same trace, so every serving experiment
is replayable bit for bit.

Three arrival patterns cover the workloads the drift-tool surveys call
out:

- ``poisson`` -- memoryless arrivals at a constant mean rate;
- ``burst`` -- on/off modulation (rate ``burst_factor`` x during bursts,
  proportionally quieter between them, same long-run mean);
- ``diurnal`` -- sinusoidal day/night modulation of the rate.

Rates are expressed against the backend's *capacity*, derived from the
same :class:`~repro.sim.costs.CostProfile` the simulated clock charges, so
"offered load 2.0" means exactly twice what the backend can sustain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, derive, stable_hash
from repro.sim.costs import CostProfile, PAPER_COSTS

ARRIVAL_PATTERNS = ("poisson", "burst", "diurnal")

#: Simulated cost of one frame on the full monitored path: VAE embed +
#: KNN nonconformity + martingale update (the Drift Inspector) plus the
#: deployed classifier.  These are the operations the pipeline's clock
#: charges per monitored frame, so capacity derived from them matches
#: what a saturated backend actually sustains.
MONITOR_FRAME_OPS: Tuple[str, ...] = (
    "vae_encode", "knn_nonconformity", "martingale_update",
    "classifier_infer")

#: Simulated cost of the degraded pass: prediction only, no drift
#: inspection (the cheap ``repro.detectors.fast``-style fallback).
DEGRADED_FRAME_OPS: Tuple[str, ...] = ("classifier_infer",)


def frame_cost_ms(profile: Optional[CostProfile] = None,
                  operations: Sequence[str] = MONITOR_FRAME_OPS) -> float:
    """Simulated milliseconds one frame costs under ``profile``."""
    profile = profile or PAPER_COSTS
    return sum(profile.cost(op) for op in operations)


def capacity_fps(profile: Optional[CostProfile] = None,
                 operations: Sequence[str] = MONITOR_FRAME_OPS) -> float:
    """Sustainable full-path throughput of one backend, frames/second."""
    cost = frame_cost_ms(profile, operations)
    if cost <= 0:
        raise ConfigurationError(
            f"per-frame cost must be positive to derive capacity, "
            f"got {cost} ms for operations {tuple(operations)}")
    return 1000.0 / cost


@dataclass
class WorkloadConfig:
    """Shape of one stream's open-loop arrival process.

    ``rate_fps`` is the long-run mean arrival rate; the pattern modulates
    the instantaneous rate around it without changing the mean.
    """

    rate_fps: float
    pattern: str = "poisson"
    burst_factor: float = 3.0
    burst_duty: float = 0.25
    burst_period_s: float = 2.0
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float = 10.0

    def __post_init__(self) -> None:
        if self.rate_fps <= 0:
            raise ConfigurationError(
                f"rate_fps must be positive: {self.rate_fps}")
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {ARRIVAL_PATTERNS}, "
                f"got {self.pattern!r}")
        if self.burst_factor < 1.0:
            raise ConfigurationError(
                f"burst_factor must be >= 1: {self.burst_factor}")
        if not 0.0 < self.burst_duty < 1.0:
            raise ConfigurationError(
                f"burst_duty must be in (0, 1): {self.burst_duty}")
        if self.burst_duty * self.burst_factor >= 1.0:
            raise ConfigurationError(
                f"burst_duty * burst_factor must stay below 1 so the "
                f"off-phase rate remains positive, got "
                f"{self.burst_duty * self.burst_factor}")
        if self.burst_period_s <= 0:
            raise ConfigurationError(
                f"burst_period_s must be positive: {self.burst_period_s}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal_amplitude must be in [0, 1): "
                f"{self.diurnal_amplitude}")
        if self.diurnal_period_s <= 0:
            raise ConfigurationError(
                f"diurnal_period_s must be positive: {self.diurnal_period_s}")

    # ------------------------------------------------------------------
    def rate_at(self, t_ms: float) -> float:
        """Instantaneous arrival rate (frames/second) at simulated time
        ``t_ms``; averages to ``rate_fps`` over a full pattern period."""
        if self.pattern == "poisson":
            return self.rate_fps
        if self.pattern == "burst":
            period_ms = self.burst_period_s * 1000.0
            phase = (t_ms % period_ms) / period_ms
            if phase < self.burst_duty:
                return self.rate_fps * self.burst_factor
            off_share = ((1.0 - self.burst_duty * self.burst_factor)
                         / (1.0 - self.burst_duty))
            return self.rate_fps * off_share
        period_ms = self.diurnal_period_s * 1000.0
        return self.rate_fps * (
            1.0 + self.diurnal_amplitude
            * math.sin(2.0 * math.pi * t_ms / period_ms))


@dataclass
class FrameArrival:
    """One frame stamped with its arrival time and deadline."""

    stream_id: str
    seq: int
    frame: np.ndarray
    arrival_ms: float
    deadline_ms: float

    @property
    def budget_ms(self) -> float:
        return self.deadline_ms - self.arrival_ms


def generate_arrivals(frames: np.ndarray, config: WorkloadConfig,
                      stream_id: str = "stream",
                      deadline_ms: float = 100.0,
                      seed: SeedLike = None,
                      start_ms: float = 0.0,
                      modulation: Optional[Callable[[float], float]] = None,
                      ) -> List[FrameArrival]:
    """Stamp ``frames`` with open-loop arrival times and deadlines.

    The inter-arrival gap before each frame is an exponential draw at the
    pattern's instantaneous rate (a thinning-free approximation of the
    non-homogeneous process that keeps generation O(n) and exactly
    reproducible).  The RNG stream is derived from ``(seed, stream_id)``
    via :func:`repro.rng.derive` + :func:`~repro.rng.stable_hash`, so each
    stream's trace is independent of every other stream's and of the order
    streams are generated in.

    ``modulation``, when given, multiplies the instantaneous rate: a
    callable from simulated milliseconds to a positive factor.  This is
    the seam drift-coupled workloads plug into -- a compiled
    ``repro.scenarios`` workload profile is such a callable, making
    arrivals surge exactly while the scene drifts (the serving layer
    never imports the scenario compiler; the coupling flows the other
    way, as a plain function).  ``None`` leaves the trace bit-identical
    to what this function has always produced.
    """
    if deadline_ms <= 0:
        raise ConfigurationError(
            f"deadline_ms must be positive: {deadline_ms}")
    stack = np.asarray(frames, dtype=np.float64)
    if stack.ndim == 1:
        stack = stack[None, :]
    rng = derive(seed, stable_hash(stream_id))
    arrivals: List[FrameArrival] = []
    t = float(start_ms)
    for seq in range(stack.shape[0]):
        rate = config.rate_at(t)
        if modulation is not None:
            factor = float(modulation(t))
            if factor <= 0:
                raise ConfigurationError(
                    f"modulation must stay positive, got {factor} at "
                    f"t={t} ms")
            rate *= factor
        t += float(rng.exponential(1000.0 / rate))
        arrivals.append(FrameArrival(
            stream_id=stream_id, seq=seq, frame=stack[seq],
            arrival_ms=t, deadline_ms=t + deadline_ms))
    return arrivals
