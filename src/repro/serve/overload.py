"""Overload-adaptive control: the NORMAL -> DEGRADED -> SHEDDING machine.

:class:`OverloadController` decides what :class:`~repro.serve.server.DriftServer`
does with arrivals whose full-path completion cannot meet their deadline.
It is a small deterministic state machine over two pressure signals the
server computes in virtual time:

- **load pressure** -- the worst per-stream ratio of either queue
  occupancy (``depth / capacity``) or projected completion time over the
  deadline budget (``eta / deadline``).  Pressure ``>= degrade_high``
  escalates NORMAL -> DEGRADED; pressure ``<= degrade_low`` relaxes
  DEGRADED -> NORMAL.  The gap between the two thresholds is the
  hysteresis band that stops the controller flapping on every queue
  fluctuation.
- **degrade share** -- an exponentially decayed estimate of how much
  backend time the cheap degraded pass itself is consuming, normalised
  by the decay horizon ``degrade_tau_ms``.  When even the cheap pass
  saturates (share ``>= shed_high``) the controller escalates
  DEGRADED -> SHEDDING and infeasible frames are dropped outright;
  share ``<= shed_low`` relaxes back to DEGRADED.

Transitions move one step per :meth:`update` call, so every escalation to
SHEDDING passes through DEGRADED and is observable as two events.  The
controller holds no wall-clock, RNG, or hidden state: it is a pure
function of the update sequence, which makes it seed-deterministic and
lets it participate in :class:`~repro.runtime.protocols.Snapshotable`
checkpoints bit-exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Controller states, in escalation order.
NORMAL = "normal"
DEGRADED = "degraded"
SHEDDING = "shedding"
OVERLOAD_STATES = (NORMAL, DEGRADED, SHEDDING)


@dataclass
class OverloadConfig:
    """Hysteresis thresholds for the overload state machine.

    ``enabled=False`` turns the whole overload machinery off: no
    feasibility checks at admission and no controller updates, i.e. the
    legacy queue-only behaviour.
    """

    enabled: bool = True
    degrade_high: float = 0.85
    degrade_low: float = 0.45
    shed_high: float = 0.25
    shed_low: float = 0.10
    degrade_tau_ms: float = 500.0

    def __post_init__(self) -> None:
        for low, high, names in (
                (self.degrade_low, self.degrade_high,
                 ("degrade_low", "degrade_high")),
                (self.shed_low, self.shed_high,
                 ("shed_low", "shed_high"))):
            if not 0 < low < high:
                raise ConfigurationError(
                    f"need 0 < {names[0]} < {names[1]}, "
                    f"got {low} and {high}")
        if self.degrade_tau_ms <= 0:
            raise ConfigurationError(
                f"degrade_tau_ms must be positive: {self.degrade_tau_ms}")


class OverloadController:
    """Deterministic hysteresis state machine over serving pressure.

    The server calls :meth:`update` with the current virtual time and
    load pressure on every admission and after every batch, and
    :meth:`note_degraded` whenever a frame takes the cheap pass.  The
    controller never inspects queues itself, so it can be unit-tested
    (and snapshot-restored) in isolation.
    """

    def __init__(self, config: Optional[OverloadConfig] = None) -> None:
        self.config = config or OverloadConfig()
        self.state = NORMAL
        self.transitions = 0
        self._last_ms = 0.0
        self._degrade_ema_ms = 0.0

    # ------------------------------------------------------------------
    def _decay(self, now_ms: float) -> None:
        dt = now_ms - self._last_ms
        if dt > 0:
            self._degrade_ema_ms *= math.exp(-dt / self.config.degrade_tau_ms)
            self._last_ms = now_ms

    def note_degraded(self, cost_ms: float, now_ms: float) -> None:
        """Account ``cost_ms`` of degraded-pass backend work at ``now_ms``."""
        self._decay(now_ms)
        self._degrade_ema_ms += cost_ms

    def degrade_share(self) -> float:
        """Fraction of recent backend time spent on the degraded pass."""
        return self._degrade_ema_ms / self.config.degrade_tau_ms

    # ------------------------------------------------------------------
    def update(self, now_ms: float,
               load_pressure: float) -> Optional[Tuple[str, str]]:
        """Advance at most one state step; returns ``(old, new)`` on a
        transition, ``None`` otherwise."""
        self._decay(now_ms)
        cfg = self.config
        old = self.state
        if self.state == NORMAL:
            if load_pressure >= cfg.degrade_high:
                self.state = DEGRADED
        elif self.state == DEGRADED:
            if self.degrade_share() >= cfg.shed_high:
                self.state = SHEDDING
            elif load_pressure <= cfg.degrade_low:
                self.state = NORMAL
        else:  # SHEDDING
            if self.degrade_share() <= cfg.shed_low:
                self.state = DEGRADED
        if self.state == old:
            return None
        self.transitions += 1
        return (old, self.state)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "state": self.state,
            "transitions": self.transitions,
            "last_ms": self._last_ms,
            "degrade_ema_ms": self._degrade_ema_ms,
        }

    def load_state_dict(self, state: dict) -> None:
        if state["state"] not in OVERLOAD_STATES:
            raise ConfigurationError(
                f"unknown overload state {state['state']!r}; "
                f"expected one of {OVERLOAD_STATES}")
        self.state = state["state"]
        self.transitions = state["transitions"]
        self._last_ms = state["last_ms"]
        self._degrade_ema_ms = state["degrade_ema_ms"]
