"""Serving SLO accounting and the ``BENCH_serve.json`` contract.

:class:`StreamSLO` summarises one tenant's serving outcome (counts,
latency percentiles, deadline misses, drift activity);
:class:`ServeResult` aggregates a whole run and renders the
schema-valid ``sweep`` entry that ``benchmarks/bench_serve.py`` emits per
offered-load point.  :data:`SERVE_SCHEMA` is the document contract,
validated -- like the perf and telemetry reports -- with the shared
dependency-free :mod:`repro.obs.schema` walker (plus a ``jsonschema``
cross-check when that package is importable).

Every number in the document is *simulated*: latencies, throughput and
makespan all live in the virtual time the backend clock charges, so the
committed report is reproducible bit for bit on any machine.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ServeReportError
from repro.obs.schema import cross_check, validate_document


def nearest_rank(values: Sequence[float], q: float) -> float:
    """The q-th percentile by the nearest-rank method (deterministic, no
    interpolation); 0.0 for an empty sample."""
    if not 0.0 < q <= 100.0:
        raise ServeReportError(f"percentile must be in (0, 100]: {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _rate(count: int, denominator: int) -> float:
    return count / denominator if denominator > 0 else 0.0


def _fps(count: int, makespan_ms: float) -> float:
    return count / (makespan_ms / 1000.0) if makespan_ms > 0 else 0.0


@dataclass
class StreamSLO:
    """One tenant's serving outcome."""

    stream_id: str
    priority: int
    shed_policy: str
    arrivals: int
    admitted: int
    processed: int
    degraded: int
    rejected: int
    rejected_infeasible: int
    deadline_misses: int
    shed: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    detections: int = 0
    deployed_model: str = ""

    @classmethod
    def from_session(cls, session) -> "StreamSLO":
        """Summarise a finished :class:`~repro.serve.session.StreamSession`
        (its pipeline must already be flushed)."""
        stats = session.stats
        return cls(
            stream_id=session.stream_id,
            priority=session.config.priority,
            shed_policy=session.config.shed_policy,
            arrivals=stats.arrivals,
            admitted=stats.admitted,
            processed=stats.processed,
            degraded=stats.degraded,
            rejected=stats.rejected,
            rejected_infeasible=stats.rejected_infeasible,
            deadline_misses=stats.deadline_misses,
            shed=dict(stats.shed),
            latencies_ms=list(stats.latencies_ms),
            detections=len(session.pipeline.result().detections),
            deployed_model=session.pipeline.deployed_model,
        )

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def served(self) -> int:
        """Frames that completed (full path + degraded pass).

        Every completion is counted exactly once: ``processed`` frames
        finish in :meth:`DriftServer._serve_batch` and ``degraded``
        frames in :meth:`DriftServer._serve_degraded`, the only two
        completion sites -- so ``len(latencies_ms) == served`` holds (a
        unit test pins it against double-counting).
        """
        return self.processed + self.degraded

    def goodput_fps(self, makespan_ms: float) -> float:
        """This tenant's in-deadline completions per simulated second of
        the run's makespan."""
        return _fps(self.served - self.deadline_misses, makespan_ms)

    def as_dict(self, makespan_ms: float = 0.0) -> dict:
        return {
            "priority": self.priority,
            "shed_policy": self.shed_policy,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "processed": self.processed,
            "degraded": self.degraded,
            "shed": dict(sorted(self.shed.items())),
            "rejected": self.rejected,
            "rejected_infeasible": self.rejected_infeasible,
            "goodput_fps": round(self.goodput_fps(makespan_ms), 6),
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": round(
                _rate(self.deadline_misses, self.served), 6),
            "shed_rate": round(_rate(self.shed_total, self.arrivals), 6),
            "p50_latency_ms": round(nearest_rank(self.latencies_ms, 50.0), 6),
            "p99_latency_ms": round(nearest_rank(self.latencies_ms, 99.0), 6),
            "max_latency_ms": round(
                max(self.latencies_ms) if self.latencies_ms else 0.0, 6),
            "detections": self.detections,
            "deployed_model": self.deployed_model,
        }


@dataclass
class ServeResult:
    """Aggregated outcome of one :meth:`DriftServer.run`.

    ``pipeline_results`` carries each stream's full
    :class:`~repro.core.pipeline.PipelineResult` (records, detections,
    fault stats) so serving consumers lose nothing over offline
    processing; the SLO accounting lives in ``streams``.
    """

    streams: Dict[str, StreamSLO]
    pipeline_results: Dict[str, object]
    makespan_ms: float
    capacity_fps: float
    frame_cost_ms: float
    degraded_cost_ms: float
    batch_overhead_ms: float
    backend_ledger: Dict[str, float] = field(default_factory=dict)
    overload_transitions: int = 0

    # ------------------------------------------------------------------
    def _sum(self, attr: str) -> int:
        return sum(getattr(slo, attr) for slo in self.streams.values())

    @property
    def arrivals(self) -> int:
        return self._sum("arrivals")

    @property
    def processed(self) -> int:
        return self._sum("processed")

    @property
    def degraded(self) -> int:
        return self._sum("degraded")

    @property
    def served(self) -> int:
        return self._sum("served")

    @property
    def shed_total(self) -> int:
        return self._sum("shed_total")

    @property
    def rejected(self) -> int:
        return self._sum("rejected")

    @property
    def rejected_infeasible(self) -> int:
        return self._sum("rejected_infeasible")

    @property
    def deadline_misses(self) -> int:
        return self._sum("deadline_misses")

    @property
    def throughput_fps(self) -> float:
        """Full-path frames served per simulated second of makespan."""
        return _fps(self.processed, self.makespan_ms)

    @property
    def served_fps(self) -> float:
        return _fps(self.served, self.makespan_ms)

    @property
    def goodput_fps(self) -> float:
        """In-deadline completions per simulated second."""
        return _fps(self.served - self.deadline_misses, self.makespan_ms)

    def latencies_ms(self) -> List[float]:
        merged: List[float] = []
        for slo in self.streams.values():
            merged.extend(slo.latencies_ms)
        return merged

    # ------------------------------------------------------------------
    def slo_entry(self, offered_load: float,
                  arrival_rate_fps: float) -> dict:
        """One schema-valid ``sweep`` entry for this run."""
        latencies = self.latencies_ms()
        totals = {
            "arrivals": self.arrivals,
            "admitted": self._sum("admitted"),
            "processed": self.processed,
            "degraded": self.degraded,
            "shed": self.shed_total,
            "rejected": self.rejected,
            "rejected_infeasible": self.rejected_infeasible,
            "overload_transitions": self.overload_transitions,
            "deadline_misses": self.deadline_misses,
            "throughput_fps": round(self.throughput_fps, 6),
            "served_fps": round(self.served_fps, 6),
            "goodput_fps": round(self.goodput_fps, 6),
            "shed_rate": round(_rate(self.shed_total, self.arrivals), 6),
            "deadline_miss_rate": round(
                _rate(self.deadline_misses, self.served), 6),
            "p50_latency_ms": round(nearest_rank(latencies, 50.0), 6),
            "p99_latency_ms": round(nearest_rank(latencies, 99.0), 6),
            "max_latency_ms": round(
                max(latencies) if latencies else 0.0, 6),
            "makespan_ms": round(self.makespan_ms, 6),
        }
        return {
            "offered_load": offered_load,
            "arrival_rate_fps": round(arrival_rate_fps, 6),
            "totals": totals,
            "streams": {stream_id: slo.as_dict(self.makespan_ms)
                        for stream_id, slo in sorted(self.streams.items())},
        }


# ----------------------------------------------------------------------
# the BENCH_serve.json contract
# ----------------------------------------------------------------------
_STREAM_ENTRY = {
    "type": "object",
    "required": ["priority", "shed_policy", "arrivals", "admitted",
                 "processed", "degraded", "shed", "rejected",
                 "rejected_infeasible", "goodput_fps",
                 "deadline_misses", "deadline_miss_rate", "shed_rate",
                 "p50_latency_ms", "p99_latency_ms", "max_latency_ms",
                 "detections", "deployed_model"],
    "additionalProperties": False,
    "properties": {
        "priority": {"type": "integer"},
        "shed_policy": {"type": "string",
                        "enum": ["drop-oldest", "drop-newest", "degrade"]},
        "arrivals": {"type": "integer", "minimum": 0},
        "admitted": {"type": "integer", "minimum": 0},
        "processed": {"type": "integer", "minimum": 0},
        "degraded": {"type": "integer", "minimum": 0},
        "shed": {"type": "object", "properties": {},
                 "additionalProperties": {"type": "integer", "minimum": 1}},
        "rejected": {"type": "integer", "minimum": 0},
        "rejected_infeasible": {"type": "integer", "minimum": 0},
        "goodput_fps": {"type": "number", "minimum": 0},
        "deadline_misses": {"type": "integer", "minimum": 0},
        "deadline_miss_rate": {"type": "number", "minimum": 0},
        "shed_rate": {"type": "number", "minimum": 0},
        "p50_latency_ms": {"type": "number", "minimum": 0},
        "p99_latency_ms": {"type": "number", "minimum": 0},
        "max_latency_ms": {"type": "number", "minimum": 0},
        "detections": {"type": "integer", "minimum": 0},
        "deployed_model": {"type": "string"},
    },
}

_TOTALS_ENTRY = {
    "type": "object",
    "required": ["arrivals", "admitted", "processed", "degraded", "shed",
                 "rejected", "rejected_infeasible", "overload_transitions",
                 "deadline_misses", "throughput_fps",
                 "served_fps", "goodput_fps", "shed_rate",
                 "deadline_miss_rate", "p50_latency_ms", "p99_latency_ms",
                 "max_latency_ms", "makespan_ms"],
    "additionalProperties": False,
    "properties": {
        "arrivals": {"type": "integer", "minimum": 0},
        "admitted": {"type": "integer", "minimum": 0},
        "processed": {"type": "integer", "minimum": 0},
        "degraded": {"type": "integer", "minimum": 0},
        "shed": {"type": "integer", "minimum": 0},
        "rejected": {"type": "integer", "minimum": 0},
        "rejected_infeasible": {"type": "integer", "minimum": 0},
        "overload_transitions": {"type": "integer", "minimum": 0},
        "deadline_misses": {"type": "integer", "minimum": 0},
        "throughput_fps": {"type": "number", "minimum": 0},
        "served_fps": {"type": "number", "minimum": 0},
        "goodput_fps": {"type": "number", "minimum": 0},
        "shed_rate": {"type": "number", "minimum": 0},
        "deadline_miss_rate": {"type": "number", "minimum": 0},
        "p50_latency_ms": {"type": "number", "minimum": 0},
        "p99_latency_ms": {"type": "number", "minimum": 0},
        "max_latency_ms": {"type": "number", "minimum": 0},
        "makespan_ms": {"type": "number", "exclusiveMinimum": 0},
    },
}

_SWEEP_ENTRY = {
    "type": "object",
    "required": ["offered_load", "arrival_rate_fps", "totals", "streams"],
    "additionalProperties": False,
    "properties": {
        "offered_load": {"type": "number", "exclusiveMinimum": 0},
        "arrival_rate_fps": {"type": "number", "exclusiveMinimum": 0},
        "totals": _TOTALS_ENTRY,
        "streams": {"type": "object", "properties": {},
                    "additionalProperties": _STREAM_ENTRY},
    },
}

SERVE_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro serving SLO report (load sweep)",
    "type": "object",
    "required": ["schema_version", "benchmark", "quick", "config",
                 "capacity_fps", "frame_cost_ms", "degraded_cost_ms",
                 "sweep"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer", "enum": [2]},
        "benchmark": {"type": "string"},
        "quick": {"type": "boolean"},
        "config": {
            "type": "object",
            "required": ["streams", "frames_per_stream", "batch_size",
                         "queue_capacity", "deadline_ms", "shed_policy",
                         "pattern", "seed"],
            "additionalProperties": False,
            "properties": {
                "streams": {"type": "integer", "minimum": 1},
                "frames_per_stream": {"type": "integer", "minimum": 1},
                "batch_size": {"type": "integer", "minimum": 1},
                "queue_capacity": {"type": "integer", "minimum": 1},
                "deadline_ms": {"type": "number", "exclusiveMinimum": 0},
                "shed_policy": {
                    "type": "string",
                    "enum": ["drop-oldest", "drop-newest", "degrade",
                             "mixed"]},
                "pattern": {"type": "string",
                            "enum": ["poisson", "burst", "diurnal",
                                     "mixed"]},
                "seed": {"type": "integer", "minimum": 0},
            },
        },
        "capacity_fps": {"type": "number", "exclusiveMinimum": 0},
        "frame_cost_ms": {"type": "number", "exclusiveMinimum": 0},
        "degraded_cost_ms": {"type": "number", "minimum": 0},
        "sweep": {"type": "array", "items": _SWEEP_ENTRY},
    },
}


def validate_serve_report(report: object) -> None:
    """Raise :class:`ServeReportError` unless ``report`` satisfies
    :data:`SERVE_SCHEMA`; cross-checks with ``jsonschema`` when
    available."""
    validate_document(report, SERVE_SCHEMA, "serve report",
                      ServeReportError)
    cross_check(report, SERVE_SCHEMA, "serve report", ServeReportError)


def upgrade_serve_report(report: dict) -> dict:
    """Upgrade a v1 serve report to the v2 shape (returns a new dict).

    v1 predates the overload controller, so the missing counters are
    definitionally zero (nothing was ever rejected as infeasible and no
    transitions happened) and per-stream ``goodput_fps`` is recomputed
    from the stream's recorded counts over the run's makespan.  A v2
    document passes through unchanged.
    """
    if not isinstance(report, dict):
        raise ServeReportError(
            f"serve report must be an object, got {type(report).__name__}")
    version = report.get("schema_version")
    if version == 2:
        return report
    if version != 1:
        raise ServeReportError(
            f"cannot upgrade serve report schema_version {version!r}; "
            f"expected 1 or 2")
    upgraded = json.loads(json.dumps(report))
    upgraded["schema_version"] = 2
    for entry in upgraded.get("sweep", []):
        totals = entry.get("totals", {})
        totals.setdefault("rejected_infeasible", 0)
        totals.setdefault("overload_transitions", 0)
        makespan = totals.get("makespan_ms", 0.0)
        if "goodput_fps" not in totals:
            in_deadline = (totals.get("processed", 0)
                           + totals.get("degraded", 0)
                           - totals.get("deadline_misses", 0))
            totals["goodput_fps"] = round(_fps(in_deadline, makespan), 6)
        for stream in entry.get("streams", {}).values():
            stream.setdefault("rejected_infeasible", 0)
            if "goodput_fps" not in stream:
                in_deadline = (stream.get("processed", 0)
                               + stream.get("degraded", 0)
                               - stream.get("deadline_misses", 0))
                stream["goodput_fps"] = round(
                    _fps(in_deadline, makespan), 6)
    return upgraded


def write_serve_report(path: str, report: dict) -> None:
    """Validate ``report`` and write it to ``path`` as formatted JSON."""
    validate_serve_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_serve_report(path: str) -> dict:
    """Read and validate a report written by :func:`write_serve_report`.

    Legacy v1 documents are transparently upgraded to v2 (see
    :func:`upgrade_serve_report`) before validation, so readers only
    ever see the current shape.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ServeReportError(
                f"serve report {path} is not valid JSON: {exc}") from exc
    if isinstance(report, dict) and report.get("schema_version") == 1:
        report = upgrade_serve_report(report)
    validate_serve_report(report)
    return report
