"""Per-tenant serving state: :class:`StreamSession` + :class:`SessionRegistry`.

A session ties one tenant's drift-aware pipeline (and therefore its
:class:`~repro.core.drift_inspector.DriftInspector` state) to the serving
knobs that distinguish tenants sharing a backend: scheduling priority,
per-frame deadline budget, queue capacity and load-shedding policy.  The
registry keys sessions by stream id in registration order -- the order is
part of the deterministic contract (scheduler tie-breaks and report
sections follow it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.core.pipeline import DriftAwareAnalytics
from repro.errors import ConfigurationError, ServeError
from repro.faults.guard import CircuitBreaker, FrameGuard
from repro.serve.arrivals import FrameArrival
from repro.serve.queues import SHED_POLICIES, BoundedFrameQueue


@dataclass
class SessionConfig:
    """Per-tenant serving knobs.

    ``priority`` biases the deadline scheduler (higher = served sooner);
    ``deadline_ms`` is the default per-frame latency budget used when the
    workload generator stamps arrivals for this stream; ``queue_capacity``
    and ``shed_policy`` configure the bounded queue;
    ``breaker_threshold`` consecutive sheds trip the admission circuit
    breaker (arrivals are then fast-failed until the queue drains below
    its low watermark); ``guard_policy`` is the admission-time
    :class:`~repro.faults.guard.FrameGuard` policy (``skip`` quarantines
    malformed frames at the serving edge, ``raise`` fails fast).

    ``weight`` is this tenant's share of the backend under the
    scheduler's weighted max-min fairness and in the server's admission
    ETA estimate; ``degraded_allowed`` controls what happens to arrivals
    whose full-path completion cannot meet the deadline -- when true the
    overload controller may divert them to the cheap degraded pass (or
    shed them while SHEDDING), when false they are rejected at arrival
    (``rejected_infeasible``), modelling a tenant that insists on
    full-quality answers.
    """

    priority: int = 0
    deadline_ms: float = 100.0
    queue_capacity: int = 64
    shed_policy: str = "drop-oldest"
    breaker_threshold: int = 16
    guard_policy: str = "skip"
    weight: float = 1.0
    degraded_allowed: bool = True

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive: {self.deadline_ms}")
        if self.queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive: {self.queue_capacity}")
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}")
        if self.breaker_threshold <= 0:
            raise ConfigurationError(
                f"breaker_threshold must be positive: "
                f"{self.breaker_threshold}")
        if self.guard_policy not in ("raise", "skip"):
            raise ConfigurationError(
                f"guard_policy must be 'raise' or 'skip', "
                f"got {self.guard_policy!r}")
        if self.weight <= 0:
            raise ConfigurationError(
                f"weight must be positive: {self.weight}")


@dataclass
class SessionStats:
    """Serving-side accounting for one stream (the pipeline keeps its own
    :class:`~repro.sim.metrics.FaultStats` independently)."""

    arrivals: int = 0
    admitted: int = 0
    processed: int = 0
    degraded: int = 0
    rejected: int = 0
    rejected_infeasible: int = 0  # subset of ``rejected``
    deadline_misses: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def count_shed(self, reason: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1


class StreamSession:
    """One tenant's serving context around a drift-aware pipeline.

    The pipeline is injected (built by the caller exactly as it would be
    for :meth:`~repro.core.pipeline.DriftAwareAnalytics.process_batched`),
    so the serve path starts from the same deterministic state as offline
    processing -- the single-stream bit-identity property depends on it.
    """

    def __init__(self, stream_id: str, pipeline: DriftAwareAnalytics,
                 config: Optional[SessionConfig] = None) -> None:
        if not stream_id:
            raise ConfigurationError("stream_id must be non-empty")
        self.stream_id = stream_id
        self.pipeline = pipeline
        self.config = config or SessionConfig()
        self.queue = BoundedFrameQueue(self.config.queue_capacity,
                                       policy=self.config.shed_policy)
        self.guard = FrameGuard(policy=self.config.guard_policy)
        self.breaker = CircuitBreaker(threshold=self.config.breaker_threshold)
        self.stats = SessionStats()
        self.next_seq = 0  # next per-stream seq the full path must emit
        self._started = False

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start the underlying pipeline session and reset serving state."""
        self.pipeline.start()
        self.queue = BoundedFrameQueue(self.config.queue_capacity,
                                       policy=self.config.shed_policy)
        self.guard.reset()
        self.breaker.reset()
        self.stats = SessionStats()
        self.next_seq = 0
        self._started = True

    def finish(self):
        """Flush the pipeline and return its :class:`PipelineResult`."""
        if not self._started:
            raise ServeError(
                f"session {self.stream_id!r} finished before begin()")
        self.pipeline.flush()
        return self.pipeline.result()

    # ------------------------------------------------------------------
    def degraded_predict(self, pixels: np.ndarray) -> int:
        """The cheap pass: predict with the deployed model, skip the
        drift inspector entirely (no RNG or martingale state is touched,
        so degraded frames cannot perturb the full path's decisions)."""
        return self.pipeline.predict_degraded(pixels)

    def screen_degraded(self, pixels: np.ndarray):
        """Stateless tier-0 suspicion for a degraded frame (``None``
        when the session's monitor offers no screen); same isolation
        contract as :meth:`degraded_predict`."""
        return self.pipeline.screen_degraded(pixels)

    def deadline_feasible(self, arrival: FrameArrival, now_ms: float,
                          eta_ms: float, eps: float = 1e-9) -> bool:
        """Can the full path still meet ``arrival``'s deadline, given the
        server's projected completion delay ``eta_ms``?  Infeasible
        arrivals are handled by the overload controller instead of being
        queued, served late and counted as misses."""
        return eta_ms <= (arrival.deadline_ms - now_ms) + eps

    def snapshot(self) -> dict:
        """Per-tenant state for introspection / migration: the drift
        inspector's dynamic state plus serving-side accounting."""
        return {
            "stream_id": self.stream_id,
            "deployed_model": self.pipeline.deployed_model,
            "inspector": self.pipeline.inspector.state_dict(),
            "queue_depth": self.queue.depth,
            "under_backpressure": self.queue.under_backpressure,
            "breaker_open": self.breaker.is_open,
            "arrivals": self.stats.arrivals,
            "processed": self.stats.processed,
            "rejected_infeasible": self.stats.rejected_infeasible,
        }


class SessionRegistry:
    """Insertion-ordered registry of serving sessions.

    Registration order is semantic: the scheduler breaks ties and the SLO
    report orders its sections by it.
    """

    def __init__(self, sessions: Optional[List[StreamSession]] = None) -> None:
        self._sessions: Dict[str, StreamSession] = {}
        self._order: Dict[str, int] = {}
        for session in sessions or []:
            self.add(session)

    def add(self, session: StreamSession) -> StreamSession:
        if session.stream_id in self._sessions:
            raise ServeError(
                f"duplicate session for stream {session.stream_id!r}")
        self._order[session.stream_id] = len(self._sessions)
        self._sessions[session.stream_id] = session
        return session

    def get(self, stream_id: str) -> StreamSession:
        try:
            return self._sessions[stream_id]
        except KeyError:
            raise ServeError(f"unknown stream {stream_id!r}; registered: "
                             f"{len(self._sessions)} session(s)") from None

    def index_of(self, stream_id: str) -> int:
        """Registration index (the deterministic tie-break key).  O(1):
        with thousands of sessions behind one server, a linear scan here
        turns every scheduler tie-break quadratic."""
        try:
            return self._order[stream_id]
        except KeyError:
            raise ServeError(f"unknown stream {stream_id!r}") from None

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._sessions

    def __iter__(self) -> Iterator[StreamSession]:
        return iter(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[str]:
        return list(self._sessions)
