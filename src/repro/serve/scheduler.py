"""Deadline-aware cross-stream micro-batch scheduling.

The backend serves one micro-batch at a time.  :class:`DeadlineScheduler`
forms each batch with earliest-deadline-first selection over the queue
*heads* (only heads are eligible -- per-stream FIFO order is an invariant
the property suite pins), refined two ways:

- **priority** -- each priority level moves a tenant's frames
  ``priority_weight_ms`` earlier in deadline space, so a premium stream
  wins ties against best-effort ones;
- **aging** -- a frame's effective deadline advances by ``aging_rate`` x
  its waiting time, so under sustained pressure from high-priority
  tenants a low-priority frame eventually becomes the most urgent
  (starvation-freedom).

Two overload refinements bound what EDF may pick:

- **weighted max-min fairness** -- when several streams compete for one
  batch, per-stream caps from a water-filling allocation over the
  tenants' ``SessionConfig.weight`` stop one hot stream from filling the
  whole batch.  Caps are ceil-integerised, so every backlogged stream is
  eligible for at least one slot per batch and EDF order decides among
  the eligible heads.
- **deadline-aware batch capping** -- because every frame in a batch
  completes together at batch end, growing the batch can push its
  earliest member past its deadline.  When the server passes its cost
  model (``frame_cost_ms`` / ``overhead_ms``), batch formation stops
  before the projected completion overruns any already-selected frame's
  deadline (the first frame is always taken, so the loop cannot stall).

Selection is fully deterministic: exact effective-deadline ties fall back
to registration order, then to the per-stream sequence number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.serve.arrivals import FrameArrival
from repro.serve.session import SessionRegistry, StreamSession

#: Fairness policies for cross-stream batch formation.
FAIRNESS_POLICIES = ("weighted-max-min", "none")

#: Tolerance for float comparisons in caps / completion projections.
_EPS = 1e-9


@dataclass
class SchedulerConfig:
    """Micro-batch formation knobs."""

    batch_size: int = 16
    priority_weight_ms: float = 50.0
    aging_rate: float = 0.1
    fairness: str = "weighted-max-min"
    deadline_aware: bool = True

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive: {self.batch_size}")
        if self.priority_weight_ms < 0:
            raise ConfigurationError(
                f"priority_weight_ms must be non-negative: "
                f"{self.priority_weight_ms}")
        if self.aging_rate < 0:
            raise ConfigurationError(
                f"aging_rate must be non-negative: {self.aging_rate}")
        if self.fairness not in FAIRNESS_POLICIES:
            raise ConfigurationError(
                f"fairness must be one of {FAIRNESS_POLICIES}, "
                f"got {self.fairness!r}")


class DeadlineScheduler:
    """EDF with priority weighting, aging, fairness caps and deadline-aware
    batch capping over session queue heads."""

    def __init__(self, config: SchedulerConfig = None) -> None:
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------
    def effective_deadline(self, arrival: FrameArrival,
                           session: StreamSession, now_ms: float) -> float:
        """The urgency key: smaller = scheduled sooner."""
        waited = max(0.0, now_ms - arrival.arrival_ms)
        return (arrival.deadline_ms
                - session.config.priority * self.config.priority_weight_ms
                - waited * self.config.aging_rate)

    def _sort_key(self, arrival: FrameArrival, session: StreamSession,
                  index: int, now_ms: float) -> Tuple[float, int, int]:
        return (self.effective_deadline(arrival, session, now_ms),
                index, arrival.seq)

    # ------------------------------------------------------------------
    def fair_caps(self,
                  candidates: List[Tuple[int, StreamSession]],
                  total: int) -> Dict[int, int]:
        """Weighted max-min share of ``total`` batch slots per stream.

        Water-filling: the fill level rises until the demand-bounded
        shares ``min(depth_i, level * weight_i)`` absorb ``total``.
        Saturated streams (backlog below their share) keep their full
        demand; the rest get ``ceil`` of their share, so any backlogged
        stream is eligible for at least one slot (no structural
        starvation), with EDF order arbitrating the small overshoot.
        """
        demands = {i: s.queue.depth for i, s in candidates}
        weights = {i: s.config.weight for i, s in candidates}
        total = min(total, sum(demands.values()))
        caps: Dict[int, int] = {i: 0 for i, _ in candidates}
        if total <= 0:
            return caps
        order = sorted(demands, key=lambda i: (demands[i] / weights[i], i))
        level = 0.0
        remaining = float(total)
        active_weight = sum(weights.values())
        for position, i in enumerate(order):
            saturation = demands[i] / weights[i]
            need = (saturation - level) * active_weight
            if need <= remaining + _EPS:
                remaining -= need
                level = saturation
                caps[i] = demands[i]
                active_weight -= weights[i]
            else:
                level += remaining / active_weight
                for j in order[position:]:
                    caps[j] = min(demands[j],
                                  math.ceil(level * weights[j] - _EPS))
                break
        return caps

    # ------------------------------------------------------------------
    def next_batch(self, registry: SessionRegistry, now_ms: float, *,
                   frame_cost_ms: Optional[float] = None,
                   overhead_ms: float = 0.0,
                   ) -> List[Tuple[StreamSession, FrameArrival]]:
        """Pop up to ``batch_size`` frames, most urgent head first.

        Returns ``(session, arrival)`` pairs in scheduling order; frames
        of one stream appear in queue (FIFO) order because only heads are
        ever eligible.  Empty list when every queue is empty.  When the
        caller supplies ``frame_cost_ms`` (and ``deadline_aware`` is on),
        the batch stops growing before its projected completion
        ``now + overhead + cost * n`` would overrun the deadline of any
        frame already selected or about to be added.
        """
        batch: List[Tuple[StreamSession, FrameArrival]] = []
        candidates = [(i, session) for i, session in enumerate(registry)
                      if session.queue.depth > 0]
        if self.config.fairness == "weighted-max-min" and len(candidates) > 1:
            caps = self.fair_caps(candidates, self.config.batch_size)
        else:
            caps = {i: s.queue.depth for i, s in candidates}
        earliest = math.inf
        while candidates and len(batch) < self.config.batch_size:
            best = min(
                candidates,
                key=lambda entry: self._sort_key(
                    entry[1].queue.peek(), entry[1], entry[0], now_ms))
            index, session = best
            head = session.queue.peek()
            if (self.config.deadline_aware and frame_cost_ms is not None
                    and batch):
                completion = (now_ms + overhead_ms
                              + frame_cost_ms * (len(batch) + 1))
                if completion > min(earliest, head.deadline_ms) + _EPS:
                    break
            batch.append((session, session.queue.pop()))
            earliest = min(earliest, head.deadline_ms)
            caps[index] -= 1
            if session.queue.depth == 0 or caps[index] <= 0:
                candidates = [(i, s) for i, s in candidates if i != index]
        return batch
