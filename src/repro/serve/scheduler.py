"""Deadline-aware cross-stream micro-batch scheduling.

The backend serves one micro-batch at a time.  :class:`DeadlineScheduler`
forms each batch with earliest-deadline-first selection over the queue
*heads* (only heads are eligible -- per-stream FIFO order is an invariant
the property suite pins), refined two ways:

- **priority** -- each priority level moves a tenant's frames
  ``priority_weight_ms`` earlier in deadline space, so a premium stream
  wins ties against best-effort ones;
- **aging** -- a frame's effective deadline advances by ``aging_rate`` x
  its waiting time, so under sustained pressure from high-priority
  tenants a low-priority frame eventually becomes the most urgent
  (starvation-freedom).

Selection is fully deterministic: exact effective-deadline ties fall back
to registration order, then to the per-stream sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.serve.arrivals import FrameArrival
from repro.serve.session import SessionRegistry, StreamSession


@dataclass
class SchedulerConfig:
    """Micro-batch formation knobs."""

    batch_size: int = 16
    priority_weight_ms: float = 50.0
    aging_rate: float = 0.1

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive: {self.batch_size}")
        if self.priority_weight_ms < 0:
            raise ConfigurationError(
                f"priority_weight_ms must be non-negative: "
                f"{self.priority_weight_ms}")
        if self.aging_rate < 0:
            raise ConfigurationError(
                f"aging_rate must be non-negative: {self.aging_rate}")


class DeadlineScheduler:
    """EDF with priority weighting and aging over session queue heads."""

    def __init__(self, config: SchedulerConfig = None) -> None:
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------
    def effective_deadline(self, arrival: FrameArrival,
                           session: StreamSession, now_ms: float) -> float:
        """The urgency key: smaller = scheduled sooner."""
        waited = max(0.0, now_ms - arrival.arrival_ms)
        return (arrival.deadline_ms
                - session.config.priority * self.config.priority_weight_ms
                - waited * self.config.aging_rate)

    def _sort_key(self, arrival: FrameArrival, session: StreamSession,
                  index: int, now_ms: float) -> Tuple[float, int, int]:
        return (self.effective_deadline(arrival, session, now_ms),
                index, arrival.seq)

    # ------------------------------------------------------------------
    def next_batch(self, registry: SessionRegistry,
                   now_ms: float) -> List[Tuple[StreamSession, FrameArrival]]:
        """Pop up to ``batch_size`` frames, most urgent head first.

        Returns ``(session, arrival)`` pairs in scheduling order; frames
        of one stream appear in queue (FIFO) order because only heads are
        ever eligible.  Empty list when every queue is empty.
        """
        batch: List[Tuple[StreamSession, FrameArrival]] = []
        candidates = [(i, session) for i, session in enumerate(registry)
                      if session.queue.depth > 0]
        while candidates and len(batch) < self.config.batch_size:
            best = min(
                candidates,
                key=lambda entry: self._sort_key(
                    entry[1].queue.peek(), entry[1], entry[0], now_ms))
            index, session = best
            batch.append((session, session.queue.pop()))
            if session.queue.depth == 0:
                candidates = [(i, s) for i, s in candidates if i != index]
        return batch
