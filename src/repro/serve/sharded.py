"""Sharded session registry: one server, thousands of sessions.

:class:`ShardedRegistry` is a :class:`~repro.serve.session.SessionRegistry`
facade that partitions its sessions across a fixed number of internal
shards.  To everything that already speaks the registry protocol --
:class:`~repro.serve.server.DriftServer`, the scheduler, the SLO report
-- it *is* a registry: global iteration order, ``ids()`` and
``index_of`` are registration order exactly as before, so swapping it in
changes no observable behaviour (the serve suite pins this).  What the
facade adds is structure for scale:

- **Deterministic placement** -- a session's shard is
  ``stable_hash(stream_id) % shards`` (CRC32, the same machine-stable
  hash behind per-stream fleet seeds), never insertion order or
  ``hash()``.  The same population lands in the same shards in every
  process and on every run, so shard-level work (snapshots, migration,
  future per-shard dispatch) is reproducible.
- **O(1) membership and index lookups** -- the facade keeps the global
  order map while each shard holds only its own sessions; with
  thousands of sessions, per-frame lookups stay flat.
- **Shard-local views** -- :meth:`shard` exposes each partition as a
  plain :class:`SessionRegistry` (ordered by global registration), so a
  caller can checkpoint, migrate or report one shard without touching
  the rest.

The shard count bounds nothing semantically: ``shards=1`` is bit-for-bit
the flat registry, and any other count only changes how
:meth:`shard_items` groups the same sessions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, ServeError
from repro.rng import stable_hash
from repro.serve.session import SessionRegistry, StreamSession


class ShardedRegistry(SessionRegistry):
    """A :class:`SessionRegistry` partitioned into deterministic shards.

    Parameters
    ----------
    shards:
        Number of partitions (>= 1).  Placement is
        ``stable_hash(stream_id) % shards``; the count is fixed for the
        registry's lifetime so placement never migrates under a caller.
    sessions:
        Optional initial sessions, registered in order.
    """

    def __init__(self, shards: int = 16,
                 sessions: Optional[List[StreamSession]] = None) -> None:
        if shards <= 0:
            raise ConfigurationError(
                f"shards must be positive: {shards}")
        self.shards = shards
        self._shard_registries = [SessionRegistry() for _ in range(shards)]
        # parent __init__ registers ``sessions`` through our add()
        super().__init__(sessions)

    # ------------------------------------------------------------------
    def shard_index(self, stream_id: str) -> int:
        """The shard ``stream_id`` lives in (pure function of the id)."""
        if not stream_id:
            raise ServeError("stream_id must be non-empty")
        return stable_hash(stream_id) % self.shards

    def add(self, session: StreamSession) -> StreamSession:
        super().add(session)
        self._shard_registries[self.shard_index(session.stream_id)].add(
            session)
        return session

    def shard(self, index: int) -> SessionRegistry:
        """The shard at ``index`` as a plain registry (shard-local
        registration order == global registration order filtered)."""
        if not 0 <= index < self.shards:
            raise ServeError(
                f"shard index {index} out of range [0, {self.shards})")
        return self._shard_registries[index]

    def shard_of(self, stream_id: str) -> SessionRegistry:
        """The shard holding ``stream_id`` (raises for unknown ids)."""
        self.get(stream_id)  # membership check with the standard error
        return self._shard_registries[self.shard_index(stream_id)]

    def shard_items(self) -> List[Tuple[int, SessionRegistry]]:
        """Non-empty shards as ``(index, registry)`` pairs, in shard
        order -- the unit of shard-level snapshotting and migration."""
        return [(index, registry)
                for index, registry in enumerate(self._shard_registries)
                if len(registry)]

    def shard_sizes(self) -> List[int]:
        """Session count per shard (all shards, including empty ones)."""
        return [len(registry) for registry in self._shard_registries]

    def snapshot_shard(self, index: int) -> List[dict]:
        """Per-session snapshots for one shard, in registration order."""
        return [session.snapshot() for session in self.shard(index)]
