"""ODIN-Select: per-frame model selection via cluster assignment.

Every incoming frame is compared against *all* permanent clusters; the
models of all clusters whose density band contains the frame's distance are
invoked.  A frame matching several bands is processed by an equal-weight
ensemble (paper Section 6: e.g. ``[(Night, 0.5), (Day, 0.5)]``), the exact
behaviour that inflates model invocations per frame and degrades accuracy
relative to MSBO / MSBI's single-best-model choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.odin.clusters import OdinCluster
from repro.errors import ConfigurationError
from repro.sim.clock import SimulatedClock


@dataclass
class SelectionOutcome:
    """Result of selecting models for one frame."""

    frame_index: int
    models: List[str]
    weights: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigurationError("selection must name at least one model")
        if not self.weights:
            self.weights = [1.0 / len(self.models)] * len(self.models)

    @property
    def is_ensemble(self) -> bool:
        return len(self.models) > 1


class OdinSelect:
    """Per-frame cluster-driven model selection."""

    def __init__(self, clusters: List[OdinCluster],
                 embedder: Optional[object] = None,
                 band_tolerance: float = 0.6,
                 clock: Optional[SimulatedClock] = None) -> None:
        if not clusters:
            raise ConfigurationError("OdinSelect needs at least one cluster")
        self.clusters = clusters
        self.embedder = embedder
        self.band_tolerance = band_tolerance
        self.clock = clock
        self._frame_index = 0
        self.outcomes: List[SelectionOutcome] = []

    def _embed(self, frame: np.ndarray) -> np.ndarray:
        if self.embedder is not None:
            if self.clock is not None:
                self.clock.charge("odin_select_embed")
            embed = getattr(self.embedder, "augmented_embed",
                            self.embedder.embed)
            latent = embed(np.asarray(frame)[None, ...])
            return np.asarray(latent, dtype=np.float64).reshape(-1)
        return np.asarray(frame, dtype=np.float64).reshape(-1)

    def select(self, frame: np.ndarray) -> SelectionOutcome:
        """Choose the model(s) processing this frame."""
        embedding = self._embed(frame)
        if self.clock is not None:
            self.clock.charge("odin_cluster_op", times=len(self.clusters))
        matches: List[str] = []
        distances: Dict[str, float] = {}
        for cluster in self.clusters:
            distance = cluster.distance(embedding)
            distances[cluster.model_name] = distance
            if cluster.in_band(distance, tolerance=self.band_tolerance):
                matches.append(cluster.model_name)
        if not matches:
            # frame matched no band: ODIN falls back to the nearest cluster
            # (the frame additionally feeds a temporary cluster in Detect)
            nearest = min(distances, key=distances.get)
            matches = [nearest]
        outcome = SelectionOutcome(frame_index=self._frame_index,
                                   models=matches)
        self.outcomes.append(outcome)
        self._frame_index += 1
        return outcome

    @property
    def invocations_per_frame(self) -> float:
        """Mean number of models invoked per processed frame."""
        if not self.outcomes:
            return 0.0
        return sum(len(o.models) for o in self.outcomes) / len(self.outcomes)

    @property
    def ensemble_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(1 for o in self.outcomes if o.is_ensemble)
                / len(self.outcomes))
