"""ODIN clusters: centroids, density bands and diagonal-Gaussian KL.

Each cluster keeps:

- a running centroid of member embeddings,
- the member distances from the centroid, from which the *density band*
  (the distance interval enclosing a fraction ``Delta = 0.5`` of members,
  i.e. the inter-quartile range) is derived,
- running diagonal-Gaussian statistics used for the KL-divergence
  promotion test of temporary clusters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, EmptyReferenceError

_MAX_DISTANCES = 2048  # bound per-cluster memory on long streams


def diagonal_gaussian_kl(mean_p: np.ndarray, var_p: np.ndarray,
                         mean_q: np.ndarray, var_q: np.ndarray) -> float:
    """KL( N(mean_p, var_p) || N(mean_q, var_q) ), diagonal covariances.

    Averaged over dimensions so thresholds are dimension-independent.
    """
    var_p = np.maximum(np.asarray(var_p, dtype=np.float64), 1e-9)
    var_q = np.maximum(np.asarray(var_q, dtype=np.float64), 1e-9)
    mean_p = np.asarray(mean_p, dtype=np.float64)
    mean_q = np.asarray(mean_q, dtype=np.float64)
    per_dim = 0.5 * (np.log(var_q / var_p) + (var_p + (mean_p - mean_q) ** 2)
                     / var_q - 1.0)
    return float(per_dim.mean())


class OdinCluster:
    """One ODIN cluster over embedding space."""

    def __init__(self, name: str, delta: float = 0.5,
                 model_name: Optional[str] = None) -> None:
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        self.name = name
        self.delta = delta
        self.model_name = model_name or name
        self.count = 0
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None  # Welford sum of squares
        self._distances: List[float] = []

    # ------------------------------------------------------------------
    @property
    def centroid(self) -> np.ndarray:
        if self._mean is None:
            raise EmptyReferenceError(f"cluster {self.name!r} is empty")
        return self._mean

    @property
    def variance(self) -> np.ndarray:
        if self._m2 is None or self.count < 2:
            raise EmptyReferenceError(
                f"cluster {self.name!r} has fewer than 2 members")
        return self._m2 / (self.count - 1)

    def gaussian_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """(mean, variance) snapshot for KL comparisons."""
        return self.centroid.copy(), self.variance.copy()

    # ------------------------------------------------------------------
    def distance(self, embedding: np.ndarray) -> float:
        """Euclidean distance of an embedding from the centroid."""
        e = np.asarray(embedding, dtype=np.float64).reshape(-1)
        return float(np.sqrt(((e - self.centroid) ** 2).sum()))

    def band(self) -> Tuple[float, float]:
        """The density band: the distance interval enclosing ``delta`` of
        members (centred quantiles)."""
        if not self._distances:
            raise EmptyReferenceError(f"cluster {self.name!r} is empty")
        arr = np.asarray(self._distances)
        lo_q = (1.0 - self.delta) / 2.0
        hi_q = 1.0 - lo_q
        return float(np.quantile(arr, lo_q)), float(np.quantile(arr, hi_q))

    def in_band(self, distance: float, tolerance: float = 0.0) -> bool:
        """Whether ``distance`` falls inside the (tolerance-expanded) band."""
        lo, hi = self.band()
        margin = tolerance * max(hi, 1e-9)
        return (lo - margin) <= distance <= (hi + margin)

    def accepts(self, embedding: np.ndarray, tolerance: float = 0.5) -> bool:
        """Frame-to-cluster assignment test: within the expanded upper band."""
        if self.count == 0:
            return False
        _, hi = self.band()
        return self.distance(embedding) <= hi * (1.0 + tolerance)

    # ------------------------------------------------------------------
    def add(self, embedding: np.ndarray) -> None:
        """Add a member, updating centroid, band and Gaussian stats."""
        e = np.asarray(embedding, dtype=np.float64).reshape(-1)
        if self._mean is None:
            self._mean = e.copy()
            self._m2 = np.zeros_like(e)
            self.count = 1
            self._distances.append(0.0)
            return
        # distance is measured against the pre-update centroid, matching
        # ODIN's assign-then-update order
        self._distances.append(self.distance(e))
        if len(self._distances) > _MAX_DISTANCES:
            self._distances = self._distances[-_MAX_DISTANCES:]
        self.count += 1
        delta = e - self._mean
        self._mean = self._mean + delta / self.count
        self._m2 = self._m2 + delta * (e - self._mean)

    def bulk_add(self, embeddings: np.ndarray) -> None:
        """Seed a cluster from a batch of embeddings."""
        arr = np.asarray(embeddings, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ConfigurationError(
                f"embeddings must be non-empty (N, D), got {arr.shape}")
        for row in arr:
            self.add(row)

    # ------------------------------------------------------------------
    # Snapshotable (the detector serializes its clusters through these)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Capture the cluster exactly (centroid, Welford stats, band
        distances); numpy arrays stay arrays so the copy is bit-exact."""
        return {
            "name": self.name,
            "delta": self.delta,
            "model_name": self.model_name,
            "count": self.count,
            "mean": None if self._mean is None else self._mean.copy(),
            "m2": None if self._m2 is None else self._m2.copy(),
            "distances": [float(d) for d in self._distances],
        }

    @classmethod
    def from_state(cls, state: dict) -> "OdinCluster":
        """Rebuild a cluster captured by :meth:`state_dict`."""
        cluster = cls(str(state["name"]), delta=float(state["delta"]),
                      model_name=str(state["model_name"]))
        cluster.count = int(state["count"])
        mean, m2 = state["mean"], state["m2"]
        cluster._mean = None if mean is None else np.asarray(
            mean, dtype=np.float64).copy()
        cluster._m2 = None if m2 is None else np.asarray(
            m2, dtype=np.float64).copy()
        cluster._distances = [float(d) for d in state["distances"]]
        return cluster
