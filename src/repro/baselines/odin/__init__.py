"""ODIN baseline (Suprem et al., VLDB 2020), reimplemented from the paper's
Section 6 description and published constants (density band Delta = 0.5,
KL promotion threshold 0.007).

- :mod:`repro.baselines.odin.clusters` -- clusters with density bands and
  diagonal-Gaussian KL tracking.
- :mod:`repro.baselines.odin.detect` -- ODIN-Detect: temporary-cluster
  promotion declares drift.
- :mod:`repro.baselines.odin.select` -- ODIN-Select: per-frame cluster
  assignment; ensembles when a frame falls in several bands.
- :mod:`repro.baselines.odin.specialize` -- ODIN-Specialize: trains a model
  for a newly promoted cluster.
- :mod:`repro.baselines.odin.system` -- the end-to-end ODIN loop used in the
  Table 9 / Figure 7-8 comparisons.
"""

from repro.baselines.odin.clusters import OdinCluster
from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.baselines.odin.select import OdinSelect, SelectionOutcome
from repro.baselines.odin.specialize import OdinSpecialize
from repro.baselines.odin.system import OdinAnalytics

__all__ = [
    "OdinCluster",
    "OdinConfig",
    "OdinDetect",
    "OdinSelect",
    "SelectionOutcome",
    "OdinSpecialize",
    "OdinAnalytics",
]
