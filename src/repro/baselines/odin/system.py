"""End-to-end ODIN: Detect + Select + Specialize wired together.

The counterpart of :class:`~repro.core.pipeline.DriftAwareAnalytics` used in
the Table 9 / Figure 7-8 comparisons.  Differences from the paper's system
are faithful to ODIN's design:

- model selection runs *per frame* (cluster assignment every frame), so the
  per-frame cost scales with the number of clusters;
- frames matching several density bands are processed by an equal-weight
  ensemble of the matching models;
- a drift is only declared when a temporary cluster is promoted, at which
  point ODIN-Specialize trains a model for it from the buffered members.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.baselines.odin.select import OdinSelect
from repro.baselines.odin.specialize import OdinSpecialize
from repro.core.pipeline import DetectionEvent, FrameRecord, PipelineResult
from repro.errors import ConfigurationError
from repro.sim.clock import SimulatedClock
from repro.sim.metrics import InvocationCounter
from repro.video.frames import pixels_of as _pixels_of


class OdinAnalytics:
    """The full ODIN processing loop.

    Parameters
    ----------
    models:
        Mapping of cluster/model name to a fitted query model
        (``predict_proba`` / ``predict``).
    embedder:
        Shared frame embedder (ODIN uses a single autoencoder for all
        frames, unlike the per-distribution VAEs of DI / MSBI).
    specializer:
        Optional :class:`OdinSpecialize`; without it, promoted clusters
        reuse the model of the nearest existing cluster.
    """

    def __init__(self, models: Dict[str, object],
                 embedder: Optional[object] = None,
                 config: Optional[OdinConfig] = None,
                 specializer: Optional[OdinSpecialize] = None,
                 band_tolerance: float = 0.6,
                 select_embedder: Optional[object] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        if not models:
            raise ConfigurationError("OdinAnalytics needs at least one model")
        self.models = dict(models)
        self.embedder = embedder
        # selection may run in a different (typically plainer) embedding
        # space than detection -- ODIN's published design drives selection
        # off its autoencoder embedding
        self.select_embedder = select_embedder or embedder
        self.clock = clock or SimulatedClock()
        self.detect = OdinDetect(config=config, embedder=embedder,
                                 clock=self.clock)
        self._select_clusters: List = []
        self._select: Optional[OdinSelect] = None
        self._band_tolerance = band_tolerance
        self.specializer = specializer
        self._unassigned_items: List[object] = []

    # ------------------------------------------------------------------
    def seed_cluster(self, name: str, embeddings: np.ndarray,
                     select_embeddings: Optional[np.ndarray] = None) -> None:
        """Register a permanent cluster for a provisioned model.

        ``select_embeddings`` seeds the parallel selection-space cluster;
        it defaults to ``embeddings`` when selection shares the detection
        embedding space.
        """
        if name not in self.models:
            raise ConfigurationError(
                f"no model registered for cluster {name!r}")
        self.detect.seed_cluster(name, embeddings, model_name=name)
        from repro.baselines.odin.clusters import OdinCluster
        cluster = OdinCluster(name, model_name=name)
        cluster.bulk_add(np.asarray(
            select_embeddings if select_embeddings is not None
            else embeddings, dtype=np.float64))
        self._select_clusters.append(cluster)

    def _selector(self) -> OdinSelect:
        if self._select is None:
            self._select = OdinSelect(
                self._select_clusters, embedder=self.select_embedder,
                band_tolerance=self._band_tolerance, clock=self.clock)
        return self._select

    # ------------------------------------------------------------------
    def _predict(self, pixels: np.ndarray, model_names: List[str]) -> int:
        """Equal-weight ensemble prediction over the selected models."""
        total = None
        for name in model_names:
            model = self.models[name]
            if self.clock is not None:
                self.clock.charge("classifier_infer")
            probs = model.predict_proba(pixels[None, ...])
            total = probs if total is None else total + probs
        return int(np.argmax(total[0]))

    def _nearest_model(self) -> str:
        """Fallback model for a promoted cluster when no specializer is
        provisioned: the model of the nearest pre-existing cluster."""
        promoted = self.detect.clusters[-1]
        best_name, best = None, float("inf")
        for cluster in self.detect.clusters[:-1]:
            if cluster.model_name not in self.models:
                continue
            dist = float(np.sqrt(
                ((cluster.centroid - promoted.centroid) ** 2).sum()))
            if dist < best:
                best, best_name = dist, cluster.model_name
        return best_name if best_name is not None else next(iter(self.models))

    def process(self, stream) -> PipelineResult:
        """Run the full ODIN loop over ``stream``."""
        records: List[FrameRecord] = []
        detections: List[DetectionEvent] = []
        invocations = InvocationCounter()
        start_ms = self.clock.elapsed_ms
        selector = self._selector()
        for index, item in enumerate(stream):
            pixels = _pixels_of(item)
            decision = self.detect.observe(pixels)
            if decision.assigned_cluster is not None and (
                    decision.assigned_cluster.startswith("temp_")):
                self._unassigned_items.append(item)
            if decision.drift and decision.promoted_cluster is not None:
                self._handle_promotion(decision.promoted_cluster, index,
                                       detections)
            outcome = selector.select(pixels)
            valid = [m for m in outcome.models if m in self.models]
            if not valid:
                valid = [self._nearest_model()]
            prediction = self._predict(pixels, valid)
            records.append(FrameRecord(index, prediction,
                                       "+".join(valid)))
            invocations.record(valid)
        return PipelineResult(records=records, detections=detections,
                              invocations=invocations,
                              simulated_ms=self.clock.elapsed_ms - start_ms)

    def _handle_promotion(self, cluster_name: str, index: int,
                          detections: List[DetectionEvent]) -> None:
        items = list(self._unassigned_items)
        self._unassigned_items = []
        model = None
        if self.specializer is not None and items:
            pixels = np.stack([_pixels_of(i) for i in items])
            model = self.specializer.specialize(cluster_name, items, pixels)
        if model is None:
            fallback = self._nearest_model()
            model = self.models[fallback]
        self.models[cluster_name] = model
        if items:
            # mirror the promoted cluster into the selection space, using
            # the same embedding function OdinSelect applies per frame
            pixels = np.stack([_pixels_of(i) for i in items])
            if self.select_embedder is not None:
                embed_fn = getattr(self.select_embedder, "augmented_embed",
                                   self.select_embedder.embed)
                select_embeddings = np.asarray(embed_fn(pixels))
            else:
                select_embeddings = pixels.reshape(pixels.shape[0], -1)
            from repro.baselines.odin.clusters import OdinCluster
            cluster = OdinCluster(cluster_name, model_name=cluster_name)
            cluster.bulk_add(select_embeddings)
            self._select_clusters.append(cluster)
        detections.append(DetectionEvent(
            frame_index=index, previous_model="",
            selected_model=cluster_name, novel=True,
            selection_frames=len(items)))
        self.detect.reset_detection()
