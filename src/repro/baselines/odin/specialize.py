"""ODIN-Specialize: train a model for a newly promoted cluster.

When ODIN-Detect promotes a temporary cluster, ODIN-Specialize collects the
frames that formed it (plus subsequent frames assigned to it) and trains a
query model, mirroring Section 5.4's trainNewModel but scoped to a cluster.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, derive
from repro.sim.clock import SimulatedClock

Annotator = Callable[[list], np.ndarray]


class OdinSpecialize:
    """Trains per-cluster query models."""

    def __init__(self, classifier_factory: Callable[[SeedLike], object],
                 annotator: Annotator,
                 min_frames: int = 20,
                 clock: Optional[SimulatedClock] = None,
                 seed: SeedLike = None) -> None:
        if min_frames < 2:
            raise ConfigurationError(f"min_frames must be >= 2: {min_frames}")
        self.classifier_factory = classifier_factory
        self.annotator = annotator
        self.min_frames = min_frames
        self.clock = clock
        self._seed = seed
        self.trained_clusters: List[str] = []

    def specialize(self, cluster_name: str, items: list,
                   pixels: np.ndarray) -> object:
        """Train a model for ``cluster_name`` from its member frames.

        ``items`` carry ground truth for the annotator; ``pixels`` is the
        stacked pixel array of the same frames.
        """
        if pixels.shape[0] < self.min_frames:
            raise ConfigurationError(
                f"need at least {self.min_frames} frames to specialize, "
                f"got {pixels.shape[0]}")
        if self.clock is not None:
            self.clock.charge("annotate_frame", times=pixels.shape[0])
        labels = np.asarray(self.annotator(items), dtype=np.int64)
        model = self.classifier_factory(
            derive(self._seed, len(self.trained_clusters)))
        model.fit(pixels, labels)
        self.trained_clusters.append(cluster_name)
        return model
