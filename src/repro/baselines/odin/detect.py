"""ODIN-Detect: clustering-based drift detection.

As frames arrive, each is assigned to the permanent cluster whose expanded
density band accepts it; frames no permanent cluster accepts grow a
*temporary* cluster.  Once the temporary cluster's diagonal-Gaussian
distribution stabilises -- the KL divergence between its state before and
after adding a frame drops below ``kl_threshold = 0.007`` (the published
constant) after a minimum number of members -- the cluster is promoted to
permanent and a drift is declared.

This is slower than DI by construction: the temporary cluster must
accumulate enough members for its Gaussian to stabilise, whereas DI's
martingale reacts to the first few strange p-values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.odin.clusters import OdinCluster, diagonal_gaussian_kl
from repro.errors import ConfigurationError
from repro.sim.clock import SimulatedClock


@dataclass
class OdinConfig:
    """ODIN constants (published values) plus assignment tolerances."""

    delta: float = 0.5
    kl_threshold: float = 0.007
    min_temp_size: int = 22
    assignment_tolerance: float = 0.15
    temp_timeout: Optional[int] = 150
    min_temp_density: float = 0.5

    def __post_init__(self) -> None:
        if self.kl_threshold <= 0:
            raise ConfigurationError(
                f"kl_threshold must be positive: {self.kl_threshold}")
        if self.min_temp_size < 3:
            raise ConfigurationError(
                f"min_temp_size must be >= 3: {self.min_temp_size}")
        if not 0.0 <= self.min_temp_density <= 1.0:
            raise ConfigurationError(
                f"min_temp_density must be in [0, 1]: {self.min_temp_density}")


@dataclass
class OdinDecision:
    """Per-frame outcome of ODIN-Detect."""

    frame_index: int
    assigned_cluster: Optional[str]
    drift: bool
    promoted_cluster: Optional[str] = None


class OdinDetect:
    """Clustering-based drift detector."""

    def __init__(self, config: Optional[OdinConfig] = None,
                 embedder: Optional[object] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.config = config or OdinConfig()
        self.embedder = embedder
        self.clock = clock
        self.clusters: List[OdinCluster] = []
        self.temp: Optional[OdinCluster] = None
        self._temp_created_at = 0
        self._temp_counter = 0
        self._frame_index = 0
        self._drift_frame: Optional[int] = None
        self.decisions: List[OdinDecision] = []

    # ------------------------------------------------------------------
    @property
    def drift_detected(self) -> bool:
        return self._drift_frame is not None

    @property
    def drift_frame(self) -> Optional[int]:
        return self._drift_frame

    def seed_cluster(self, name: str, embeddings: np.ndarray,
                     model_name: Optional[str] = None) -> OdinCluster:
        """Create a permanent cluster from a provisioned model's data."""
        cluster = OdinCluster(name, delta=self.config.delta,
                              model_name=model_name)
        cluster.bulk_add(np.asarray(embeddings, dtype=np.float64))
        self.clusters.append(cluster)
        return cluster

    # ------------------------------------------------------------------
    def _embed(self, frame: np.ndarray) -> np.ndarray:
        if self.embedder is not None:
            if self.clock is not None:
                self.clock.charge("odin_embed")
            embed = getattr(self.embedder, "augmented_embed",
                            self.embedder.embed)
            latent = embed(np.asarray(frame)[None, ...])
            return np.asarray(latent, dtype=np.float64).reshape(-1)
        return np.asarray(frame, dtype=np.float64).reshape(-1)

    def observe(self, frame: np.ndarray) -> OdinDecision:
        """Process one frame (assignment -> temp cluster -> promotion)."""
        if (self.temp is not None and self.config.temp_timeout is not None
                and self._frame_index - self._temp_created_at
                > self.config.temp_timeout):
            # the temporary cluster never stabilised within its age budget:
            # it collected scattered in-distribution outliers, not a drift
            self.temp = None
        embedding = self._embed(frame)
        if self.clock is not None:
            self.clock.charge("odin_band_update")
        assigned = None
        for cluster in self.clusters:
            if cluster.accepts(embedding, self.config.assignment_tolerance):
                cluster.add(embedding)
                assigned = cluster.name
                break
        decision = OdinDecision(frame_index=self._frame_index,
                                assigned_cluster=assigned, drift=False)
        if assigned is None:
            decision = self._handle_unassigned(embedding, decision)
        self.decisions.append(decision)
        self._frame_index += 1
        return decision

    def _handle_unassigned(self, embedding: np.ndarray,
                           decision: OdinDecision) -> OdinDecision:
        if self.temp is None:
            self._temp_counter += 1
            self.temp = OdinCluster(f"temp_{self._temp_counter}",
                                    delta=self.config.delta)
            self._temp_created_at = self._frame_index
        before = None
        if self.temp.count >= 2:
            before = self.temp.gaussian_state()
        self.temp.add(embedding)
        decision.assigned_cluster = self.temp.name
        if (before is not None and self.temp.count >= self.config.min_temp_size):
            if self.clock is not None:
                self.clock.charge("odin_kl_check")
            after = self.temp.gaussian_state()
            kl = diagonal_gaussian_kl(before[0], before[1], after[0], after[1])
            age = self._frame_index - self._temp_created_at + 1
            density = self.temp.count / max(age, 1)
            # density gate: a genuine post-drift stream fills the temporary
            # cluster on nearly every frame, whereas scattered
            # in-distribution outliers trickle in slowly -- adding one such
            # point barely moves a 20+-member Gaussian, so the KL test alone
            # would promote any sufficiently old temp cluster
            if (kl < self.config.kl_threshold
                    and density >= self.config.min_temp_density):
                # temporary cluster stabilised: promote and declare drift
                promoted = self.temp
                promoted.name = f"cluster_{len(self.clusters)}"
                promoted.model_name = promoted.name
                self.clusters.append(promoted)
                self.temp = None
                decision.drift = True
                decision.promoted_cluster = promoted.name
                if self._drift_frame is None:
                    self._drift_frame = decision.frame_index
        return decision

    def frames_to_detect(self, frames, limit: Optional[int] = None) -> Optional[int]:
        """Frames consumed before declaring drift (paper's Figure 3 metric)."""
        for i, frame in enumerate(frames):
            if limit is not None and i >= limit:
                return None
            if self.observe(frame).drift:
                return i + 1
        return None

    def reset_detection(self) -> None:
        """Clear the drift flag and temporary cluster; keep permanent
        clusters (ODIN's clusters persist across drifts)."""
        self.temp = None
        self._drift_frame = None

    def reset(self) -> None:
        """Alias for :meth:`reset_detection` (the
        :class:`~repro.runtime.protocols.DriftMonitor` contract)."""
        self.reset_detection()

    # ------------------------------------------------------------------
    # Snapshotable: cluster set + temp-cluster bookkeeping.  ODIN exposes
    # no ``observe_batch``, so the kernel still drives it frame by frame;
    # the snapshot exists for checkpoint/restore and crash recovery.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Capture detection state; per-frame ``decisions`` are
        diagnostics, not state, and are not included."""
        return {
            "frame_index": self._frame_index,
            "drift_frame": self._drift_frame,
            "temp_created_at": self._temp_created_at,
            "temp_counter": self._temp_counter,
            "clusters": [cluster.state_dict() for cluster in self.clusters],
            "temp": None if self.temp is None else self.temp.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` into a detector
        built with the same configuration."""
        self._frame_index = int(state["frame_index"])
        drift_frame = state["drift_frame"]
        self._drift_frame = None if drift_frame is None else int(drift_frame)
        self._temp_created_at = int(state["temp_created_at"])
        self._temp_counter = int(state["temp_counter"])
        self.clusters = [OdinCluster.from_state(entry)
                         for entry in state["clusters"]]
        temp = state["temp"]
        self.temp = None if temp is None else OdinCluster.from_state(temp)
        self.decisions = []
