"""Baselines evaluated against the paper's proposals.

- :mod:`repro.baselines.odin` -- reimplementation of ODIN (VLDB 2020) from
  the paper's Section 6 description: clustering-based drift detection with
  density bands, per-frame model selection with ensembles, and cluster
  specialization.
- :mod:`repro.baselines.statistical` -- classical change detectors
  (two-sample KS, CUSUM / Page, moment drift) for ablations.
"""

from repro.baselines.odin import OdinAnalytics, OdinConfig, OdinDetect, OdinSelect
from repro.baselines.statistical import (
    CusumDetector,
    KSDetector,
    MomentDetector,
)

__all__ = [
    "OdinAnalytics",
    "OdinConfig",
    "OdinDetect",
    "OdinSelect",
    "KSDetector",
    "CusumDetector",
    "MomentDetector",
]
