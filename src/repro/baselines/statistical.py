"""Classical statistical change detectors (Related Work, Section 2).

Provided for ablations against DI:

- :class:`KSDetector` -- two-sample Kolmogorov-Smirnov test of a sliding
  window against the reference sample, applied per latent dimension with a
  Bonferroni correction (the paper notes multidimensional KS is impractical;
  per-dimension testing is the standard workaround).
- :class:`CusumDetector` -- Page's CUSUM control chart on a univariate
  drift statistic (distance from the reference centroid).  Control charts
  need distributional knowledge; here the reference mean/std are estimated
  from the sample.
- :class:`MomentDetector` -- z-test on the window mean of the drift
  statistic (the simplest moment-based monitor).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError, EmptyReferenceError


class _ReferenceDetector:
    """Shared plumbing: a latent reference sample and an optional embedder."""

    def __init__(self, reference: np.ndarray,
                 embedder: Optional[object] = None) -> None:
        self.reference = np.asarray(reference, dtype=np.float64)
        if self.reference.ndim != 2 or self.reference.shape[0] < 5:
            raise EmptyReferenceError(
                f"reference must be (N>=5, D), got {self.reference.shape}")
        self.embedder = embedder
        self._frame_index = 0
        self._drift_frame: Optional[int] = None

    @property
    def drift_detected(self) -> bool:
        return self._drift_frame is not None

    @property
    def drift_frame(self) -> Optional[int]:
        return self._drift_frame

    def _embed(self, frame: np.ndarray) -> np.ndarray:
        if self.embedder is not None:
            # prefer the posterior-sampling embedding so frames live in the
            # same space as a VAE-generated reference sample (Sigma_T)
            embed = getattr(self.embedder, "sample_embed", None)
            if embed is None:
                embed = self.embedder.embed
            latent = embed(np.asarray(frame)[None, ...])
            return np.asarray(latent, dtype=np.float64).reshape(-1)
        return np.asarray(frame, dtype=np.float64).reshape(-1)

    def frames_to_detect(self, frames, limit: Optional[int] = None) -> Optional[int]:
        for i, frame in enumerate(frames):
            if limit is not None and i >= limit:
                return None
            if self.observe(frame):
                return i + 1
        return None

    def observe(self, frame: np.ndarray) -> bool:
        raise NotImplementedError

    def observe_batch(self, frames: np.ndarray) -> list:
        """Observe a ``(B, ...)`` stack frame by frame.

        The loop is the implementation, so batched observation is
        definitionally bit-identical to sequential observation; combined
        with :meth:`state_dict` it qualifies these detectors for the
        kernel's optimistic batched-rollback path.
        """
        arr = np.asarray(frames)
        if arr.ndim == 1:
            arr = arr[None, :]
        return [self.observe(frame) for frame in arr]

    def reset(self) -> None:
        """Re-arm detection against the current reference (the
        :class:`~repro.runtime.protocols.DriftMonitor` contract; subclasses
        extend this to clear their accumulators)."""
        self._frame_index = 0
        self._drift_frame = None

    # ------------------------------------------------------------------
    # Snapshotable: shared plumbing + per-detector accumulator hooks
    # ------------------------------------------------------------------
    def _extra_state(self) -> dict:
        return {}

    def _load_extra_state(self, state: dict) -> None:
        pass

    def state_dict(self) -> dict:
        """Capture dynamic state (frame counter, drift flag, accumulators).

        The reference sample and derived statistics are *configuration* --
        rebuilt from the deployed bundle on restore -- so they are not
        included (mirroring :class:`~repro.core.drift_inspector.DriftInspector`).
        """
        return {"frame_index": self._frame_index,
                "drift_frame": self._drift_frame,
                **self._extra_state()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` into a detector
        built with the same configuration and reference."""
        self._frame_index = int(state["frame_index"])
        drift_frame = state["drift_frame"]
        self._drift_frame = None if drift_frame is None else int(drift_frame)
        self._load_extra_state(state)


class KSDetector(_ReferenceDetector):
    """Sliding-window two-sample KS test per dimension (Bonferroni)."""

    def __init__(self, reference: np.ndarray, window: int = 30,
                 significance: float = 0.01,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if window < 5:
            raise ConfigurationError(f"window must be >= 5, got {window}")
        if not 0.0 < significance < 1.0:
            raise ConfigurationError(
                f"significance must be in (0, 1), got {significance}")
        self.window = window
        self.significance = significance
        self._buffer: Deque[np.ndarray] = deque(maxlen=window)

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()

    def _extra_state(self) -> dict:
        buffer = np.stack(self._buffer) if self._buffer else None
        return {"buffer": buffer}

    def _load_extra_state(self, state: dict) -> None:
        self._buffer.clear()
        buffer = state["buffer"]
        if buffer is not None:
            for row in np.asarray(buffer, dtype=np.float64):
                self._buffer.append(row.copy())

    def observe(self, frame: np.ndarray) -> bool:
        latent = self._embed(frame)
        self._buffer.append(latent)
        if len(self._buffer) < self.window:
            self._frame_index += 1
            return self.drift_detected
        window = np.stack(self._buffer)
        dims = window.shape[1]
        corrected = self.significance / dims
        drift = False
        for d in range(dims):
            result = stats.ks_2samp(window[:, d], self.reference[:, d])
            if result.pvalue < corrected:
                drift = True
                break
        if drift and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self._frame_index += 1
        return drift or self.drift_detected


class CusumDetector(_ReferenceDetector):
    """Page's CUSUM on the distance-from-centroid statistic."""

    def __init__(self, reference: np.ndarray, threshold: float = 8.0,
                 slack: float = 0.5,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive: {threshold}")
        if slack < 0:
            raise ConfigurationError(f"slack must be non-negative: {slack}")
        self.threshold = threshold
        self.slack = slack
        self._centroid = self.reference.mean(axis=0)
        dists = np.sqrt(((self.reference - self._centroid) ** 2).sum(axis=1))
        self._mu = float(dists.mean())
        self._sigma = float(max(dists.std(), 1e-9))
        self._cusum = 0.0

    def reset(self) -> None:
        super().reset()
        self._cusum = 0.0

    def _extra_state(self) -> dict:
        return {"cusum": self._cusum}

    def _load_extra_state(self, state: dict) -> None:
        self._cusum = float(state["cusum"])

    def _statistic(self, latent: np.ndarray) -> float:
        dist = float(np.sqrt(((latent - self._centroid) ** 2).sum()))
        return (dist - self._mu) / self._sigma

    def observe(self, frame: np.ndarray) -> bool:
        z = self._statistic(self._embed(frame))
        self._cusum = max(0.0, self._cusum + z - self.slack)
        drift = self._cusum > self.threshold
        if drift and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self._frame_index += 1
        return drift or self.drift_detected


class MomentDetector(_ReferenceDetector):
    """z-test on the sliding-window mean of the drift statistic."""

    def __init__(self, reference: np.ndarray, window: int = 20,
                 z_threshold: float = 4.0,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if z_threshold <= 0:
            raise ConfigurationError(
                f"z_threshold must be positive: {z_threshold}")
        self.window = window
        self.z_threshold = z_threshold
        self._centroid = self.reference.mean(axis=0)
        dists = np.sqrt(((self.reference - self._centroid) ** 2).sum(axis=1))
        self._mu = float(dists.mean())
        self._sigma = float(max(dists.std(), 1e-9))
        self._buffer: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()

    def _extra_state(self) -> dict:
        return {"buffer": list(self._buffer)}

    def _load_extra_state(self, state: dict) -> None:
        self._buffer.clear()
        self._buffer.extend(float(v) for v in state["buffer"])

    def observe(self, frame: np.ndarray) -> bool:
        latent = self._embed(frame)
        dist = float(np.sqrt(((latent - self._centroid) ** 2).sum()))
        self._buffer.append(dist)
        drift = False
        if len(self._buffer) == self.window:
            window_mean = float(np.mean(self._buffer))
            z = (window_mean - self._mu) / (self._sigma / np.sqrt(self.window))
            drift = abs(z) > self.z_threshold
        if drift and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self._frame_index += 1
        return drift or self.drift_detected
