"""Checkpoint / restore for :class:`~repro.core.pipeline.DriftAwareAnalytics`.

A checkpoint freezes one streaming session mid-stream into a single npz
archive (the :mod:`repro.nn.serialization` manifest-archive pattern): the
deployed model name, the Drift Inspector's martingale and RNG state, the
pipeline mode and its selection / training buffer, the frame guard and
circuit-breaker state, every record and detection emitted so far, the
invocation and fault ledgers, and the simulated clock.  Restoring into a
freshly constructed pipeline (same registry, selector and configuration)
resumes the stream *bit-exactly*: the remaining frames produce the same
records and detections an uninterrupted run would have.

What a checkpoint deliberately does **not** carry:

- provisioned bundles -- they are configuration; persist them with
  :mod:`repro.core.selection.persistence` and rebuild the registry first.
  Bundles trained mid-session (``novel_*``) must be persisted the same way
  before the process dies, or restore will refuse the unknown name.
- per-frame ``DriftDecision`` diagnostics and the guard's quarantine keep --
  they are observability, not behaviour.
- buffered frames' ground-truth metadata: buffer items are restored as raw
  pixel arrays, so an annotator used after restore must accept arrays (the
  built-in oracle annotators do).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.pipeline import (
    DetectionEvent,
    DriftAwareAnalytics,
    FrameRecord,
)
from repro.errors import CheckpointError
from repro.nn.serialization import load_manifest_archive, save_manifest_archive

CHECKPOINT_VERSION = 1


def _pixels_of(item: object) -> np.ndarray:
    return np.asarray(getattr(item, "pixels", item), dtype=np.float64)


def session_state(pipeline: DriftAwareAnalytics):
    """Capture a live session as ``(manifest, arrays)``.

    Raises :class:`CheckpointError` when no session is active.
    """
    if not hasattr(pipeline, "_mode"):
        raise CheckpointError(
            "no active session to checkpoint; call start() or step() first")
    guard = pipeline.guard
    manifest: dict = {
        "version": CHECKPOINT_VERSION,
        "deployed": pipeline.deployed_model,
        "mode": pipeline._mode,
        "index": pipeline._index,
        "frames_since_swap": pipeline._frames_since_swap,
        "start_ms": pipeline._start_ms,
        "records": [{"frame_index": r.frame_index,
                     "prediction": r.prediction,
                     "model": r.model} for r in pipeline._records],
        "detections": [{"frame_index": d.frame_index,
                        "previous_model": d.previous_model,
                        "selected_model": d.selected_model,
                        "novel": d.novel,
                        "selection_frames": d.selection_frames}
                       for d in pipeline._detections],
        "invocations": pipeline._invocations.state_dict(),
        "faults": pipeline._faults.state_dict(),
        "inspector": pipeline.inspector.state_dict(),
        "clock": pipeline.clock.state_dict(),
        "breaker": {"failures": pipeline.breaker.failures,
                    "trips": pipeline.breaker.trips,
                    "is_open": pipeline.breaker.is_open},
        "guard": {"expected_shape": (list(guard.expected_shape)
                                     if guard.expected_shape is not None
                                     else None),
                  "admitted": guard._admitted,
                  "reasons": dict(guard.reasons)},
        "buffer_len": len(pipeline._buffer),
    }
    selector_rng = getattr(pipeline.selector, "_rng", None)
    if isinstance(selector_rng, np.random.Generator):
        manifest["selector_rng"] = selector_rng.bit_generator.state
    arrays: Dict[str, np.ndarray] = {}
    if pipeline._buffer:
        arrays["buffer"] = np.stack(
            [_pixels_of(item) for item in pipeline._buffer])
    if guard.last_good is not None:
        arrays["guard_last_good"] = guard.last_good
    return manifest, arrays


def save_checkpoint(path: str, pipeline: DriftAwareAnalytics) -> None:
    """Write the session to ``path`` as one npz archive."""
    manifest, arrays = session_state(pipeline)
    save_manifest_archive(path, manifest, arrays)


def apply_session_state(pipeline: DriftAwareAnalytics, manifest: dict,
                        arrays: Dict[str, np.ndarray]) -> DriftAwareAnalytics:
    """Load captured state into a freshly constructed pipeline."""
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} not supported "
            f"(expected {CHECKPOINT_VERSION})")
    deployed = manifest["deployed"]
    if deployed not in pipeline.registry:
        raise CheckpointError(
            f"checkpoint deploys {deployed!r} but the registry only has "
            f"{pipeline.registry.names()}; persist mid-session bundles with "
            f"repro.core.selection.persistence before checkpointing")
    pipeline.start()
    # rebuild the inspector against the deployed bundle, then overlay the
    # checkpointed dynamic state (martingale, RNG streams, counters)
    pipeline._deploy(deployed)
    pipeline.inspector.load_state_dict(manifest["inspector"])
    pipeline._records = [FrameRecord(**r) for r in manifest["records"]]
    pipeline._detections = [DetectionEvent(**d)
                            for d in manifest["detections"]]
    pipeline._invocations.load_state_dict(manifest["invocations"])
    pipeline._faults.load_state_dict(manifest["faults"])
    pipeline._mode = str(manifest["mode"])
    pipeline._index = int(manifest["index"])
    pipeline._frames_since_swap = int(manifest["frames_since_swap"])
    pipeline.clock.load_state_dict(manifest["clock"])
    pipeline._start_ms = float(manifest["start_ms"])
    breaker = manifest["breaker"]
    pipeline.breaker.failures = int(breaker["failures"])
    pipeline.breaker.trips = int(breaker["trips"])
    pipeline.breaker.is_open = bool(breaker["is_open"])
    guard_state = manifest["guard"]
    shape = guard_state["expected_shape"]
    pipeline.guard.expected_shape = (tuple(int(n) for n in shape)
                                     if shape is not None else None)
    pipeline.guard._admitted = int(guard_state["admitted"])
    pipeline.guard.reasons = {str(k): int(v)
                              for k, v in guard_state["reasons"].items()}
    if "guard_last_good" in arrays:
        pipeline.guard.last_good = np.asarray(arrays["guard_last_good"],
                                              dtype=np.float64)
    buffer_len = int(manifest["buffer_len"])
    buffer = arrays.get("buffer")
    if buffer_len:
        if buffer is None or buffer.shape[0] != buffer_len:
            raise CheckpointError(
                f"checkpoint announces {buffer_len} buffered frames but the "
                f"archive holds "
                f"{0 if buffer is None else buffer.shape[0]}")
        pipeline._buffer = [np.asarray(frame, dtype=np.float64)
                            for frame in buffer]
    if "selector_rng" in manifest:
        selector_rng = getattr(pipeline.selector, "_rng", None)
        if isinstance(selector_rng, np.random.Generator):
            selector_rng.bit_generator.state = manifest["selector_rng"]
    return pipeline


def restore_checkpoint(path: str,
                       pipeline: DriftAwareAnalytics) -> DriftAwareAnalytics:
    """Resume a saved session into ``pipeline`` (freshly constructed with
    the same registry, selector and configuration)."""
    manifest, arrays = load_manifest_archive(path)
    return apply_session_state(pipeline, manifest, arrays)
