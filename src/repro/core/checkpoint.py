"""Checkpoint / restore for :class:`~repro.core.pipeline.DriftAwareAnalytics`.

A checkpoint freezes one streaming session mid-stream into a single npz
archive (the :mod:`repro.nn.serialization` manifest-archive pattern): the
deployed model name, the Drift Inspector's martingale and RNG state, the
pipeline mode and its selection / training buffer, the frame guard and
circuit-breaker state, every record and detection emitted so far, the
invocation and fault ledgers, and the simulated clock.  Restoring into a
freshly constructed pipeline (same registry, selector and configuration)
resumes the stream *bit-exactly*: the remaining frames produce the same
records and detections an uninterrupted run would have.

The capture goes through the pipeline's
:class:`~repro.runtime.protocols.Snapshotable` surface (``state_dict`` /
``load_state_dict``) -- this module only splits numpy arrays out of the
state into the npz archive and validates the manifest; it never touches
pipeline internals.

What a checkpoint deliberately does **not** carry:

- provisioned bundles -- they are configuration; persist them with
  :mod:`repro.core.selection.persistence` and rebuild the registry first.
  Bundles trained mid-session (``novel_*``) must be persisted the same way
  before the process dies, or restore will refuse the unknown name.
- per-frame ``DriftDecision`` diagnostics and the guard's quarantine keep --
  they are observability, not behaviour.
- buffered frames' ground-truth metadata: buffer items are restored as raw
  pixel arrays, so an annotator used after restore must accept arrays (the
  built-in oracle annotators do).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.pipeline import DriftAwareAnalytics
from repro.errors import CheckpointError
from repro.nn.serialization import load_manifest_archive, save_manifest_archive

CHECKPOINT_VERSION = 1

#: State-dict keys holding numpy arrays, split into the npz archive.
_ARRAY_KEYS = ("buffer", "guard_last_good")


def session_state(pipeline: DriftAwareAnalytics):
    """Capture a live session as ``(manifest, arrays)``.

    Raises :class:`CheckpointError` when no session is active.
    """
    state = pipeline.state_dict()
    manifest: dict = {"version": CHECKPOINT_VERSION}
    arrays: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        if key in _ARRAY_KEYS:
            if value is not None:
                arrays[key] = np.asarray(value)
        else:
            manifest[key] = value
    buffer = arrays.get("buffer")
    manifest["buffer_len"] = 0 if buffer is None else int(buffer.shape[0])
    return manifest, arrays


def save_checkpoint(path: str, pipeline: DriftAwareAnalytics) -> None:
    """Write the session to ``path`` as one npz archive."""
    manifest, arrays = session_state(pipeline)
    save_manifest_archive(path, manifest, arrays)


def apply_session_state(pipeline: DriftAwareAnalytics, manifest: dict,
                        arrays: Dict[str, np.ndarray]) -> DriftAwareAnalytics:
    """Load captured state into a freshly constructed pipeline."""
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} not supported "
            f"(expected {CHECKPOINT_VERSION})")
    buffer_len = int(manifest["buffer_len"])
    buffer = arrays.get("buffer")
    if buffer_len and (buffer is None or buffer.shape[0] != buffer_len):
        raise CheckpointError(
            f"checkpoint announces {buffer_len} buffered frames but the "
            f"archive holds {0 if buffer is None else buffer.shape[0]}")
    state = {key: value for key, value in manifest.items()
             if key not in ("version", "buffer_len")}
    for key in _ARRAY_KEYS:
        state[key] = arrays.get(key)
    pipeline.load_state_dict(state)
    return pipeline


def restore_checkpoint(path: str,
                       pipeline: DriftAwareAnalytics) -> DriftAwareAnalytics:
    """Resume a saved session into ``pipeline`` (freshly constructed with
    the same registry, selector and configuration)."""
    manifest, arrays = load_manifest_archive(path)
    return apply_session_state(pipeline, manifest, arrays)
