"""Conformal p-values (paper Eq. 1-2).

Given precomputed reference nonconformity scores ``A_i`` and the score
``a_f`` of a new observation, the (smoothed) conformal p-value is

    p = ( |{i : A_i > a_f}| + U * |{i : A_i == a_f}| ) / n

with ``U ~ Uniform[0, 1]`` breaking ties.  Under exchangeability the
p-values are i.i.d. uniform on [0, 1] (Theorem 4.1), which is the property
the martingale tests exploit.

Note the orientation: the paper counts reference scores *greater* than the
new score, so a very strange frame (large ``a_f``) gets a p-value near 0.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EmptyReferenceError
from repro.rng import SeedLike, ensure_rng


def conformal_pvalue(reference_scores: np.ndarray, score: float,
                     rng: Optional[np.random.Generator] = None,
                     tie_tolerance: float = 0.0,
                     include_self: bool = True) -> float:
    """Smoothed conformal p-value of ``score`` against ``reference_scores``.

    Eq. 1's index ``i`` runs over all ``n`` observations *including* the new
    one, so with ``include_self=True`` (the default and the theoretically
    exact form) the new observation contributes ``U`` to the numerator and
    one to the denominator.  This keeps p strictly inside ``(0, 1)`` --
    without it, a score exceeding every reference score yields exactly 0 with
    probability ``1/(n+1)``, a point mass that breaks uniformity and inflates
    the martingale's false-positive rate.

    ``tie_tolerance`` treats scores within that absolute distance as equal,
    which matters when scores come from floating-point distance pipelines.
    """
    ref = np.asarray(reference_scores, dtype=np.float64).reshape(-1)
    if ref.shape[0] == 0:
        raise EmptyReferenceError("reference score list A_i is empty")
    if tie_tolerance > 0:
        greater = int((ref > score + tie_tolerance).sum())
        equal = int((np.abs(ref - score) <= tie_tolerance).sum())
    else:
        greater = int((ref > score).sum())
        equal = int((ref == score).sum())
    u = float(ensure_rng(rng).uniform()) if rng is not None else float(
        np.random.default_rng().uniform())
    if include_self:
        return (greater + u * (equal + 1)) / (ref.shape[0] + 1)
    return (greater + u * equal) / ref.shape[0]


def conformal_pvalues_batch(reference_scores: np.ndarray, scores: np.ndarray,
                            rng: Optional[np.random.Generator] = None,
                            tie_tolerance: float = 0.0,
                            include_self: bool = True) -> np.ndarray:
    """Smoothed conformal p-values for a 1-D array of scores.

    Bit-identical to calling :func:`conformal_pvalue` once per score with
    the same generator: the greater/equal counts are computed by row-wise
    broadcasting (each row performs the scalar path's comparisons), and the
    tie-breaking uniforms are drawn as one block -- numpy generators consume
    the underlying bit stream identically whether uniforms are requested one
    at a time or as an array.
    """
    ref = np.asarray(reference_scores, dtype=np.float64).reshape(-1)
    if ref.shape[0] == 0:
        raise EmptyReferenceError("reference score list A_i is empty")
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    if s.size == 0:
        return np.empty(0, dtype=np.float64)
    if tie_tolerance > 0:
        greater = (ref[None, :] > s[:, None] + tie_tolerance).sum(axis=1)
        equal = (np.abs(ref[None, :] - s[:, None])
                 <= tie_tolerance).sum(axis=1)
    else:
        greater = (ref[None, :] > s[:, None]).sum(axis=1)
        equal = (ref[None, :] == s[:, None]).sum(axis=1)
    generator = ensure_rng(rng) if rng is not None else np.random.default_rng()
    us = generator.uniform(size=s.shape[0])
    if include_self:
        return (greater + us * (equal + 1)) / (ref.shape[0] + 1)
    return (greater + us * equal) / ref.shape[0]


class PValueCalculator:
    """Stateful p-value calculator bound to one reference score list.

    Owns its RNG so repeated calls produce a reproducible stream of
    tie-breaking uniforms.
    """

    def __init__(self, reference_scores: np.ndarray, seed: SeedLike = None,
                 tie_tolerance: float = 0.0, include_self: bool = True) -> None:
        self.reference_scores = np.asarray(
            reference_scores, dtype=np.float64).reshape(-1)
        if self.reference_scores.shape[0] == 0:
            raise EmptyReferenceError("reference score list A_i is empty")
        self._rng = ensure_rng(seed)
        self.tie_tolerance = tie_tolerance
        self.include_self = include_self

    def __call__(self, score: float) -> float:
        return conformal_pvalue(self.reference_scores, score, rng=self._rng,
                                tie_tolerance=self.tie_tolerance,
                                include_self=self.include_self)

    def batch(self, scores: np.ndarray) -> np.ndarray:
        """P-values for an array of scores; consumes the tie-breaking
        uniform stream exactly as repeated scalar calls would."""
        return conformal_pvalues_batch(
            self.reference_scores, scores, rng=self._rng,
            tie_tolerance=self.tie_tolerance, include_self=self.include_self)

    def rng_state(self) -> dict:
        """The tie-breaking generator's bit-generator state (JSON-safe)."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`rng_state`, so the uniform
        stream resumes exactly where a checkpointed session left off."""
        self._rng.bit_generator.state = state
