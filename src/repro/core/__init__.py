"""The paper's primary contribution.

- :mod:`repro.core.nonconformity` -- nonconformity measures (Section 4).
- :mod:`repro.core.pvalues` -- conformal p-values (Eq. 1-2).
- :mod:`repro.core.betting` -- betting functions (Sections 4.1, 4.2.4).
- :mod:`repro.core.martingale` -- exchangeability martingales and the
  windowed Hoeffding-Azuma drift test (Eq. 14-15).
- :mod:`repro.core.drift_inspector` -- the Drift Inspector (Algorithm 1).
- :mod:`repro.core.selection` -- MSBI / MSBO model selection (Section 5).
- :mod:`repro.core.pipeline` -- the Figure 1 end-to-end architecture.
"""

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.martingale import (
    AdditiveMartingale,
    MartingaleBatch,
    MultiplicativeMartingale,
    hoeffding_threshold,
)
from repro.core.nonconformity import KNNDistance, MahalanobisDistance, MeanDistance
from repro.core.pvalues import conformal_pvalue, conformal_pvalues_batch

__all__ = [
    "DriftInspector",
    "DriftInspectorConfig",
    "AdditiveMartingale",
    "MartingaleBatch",
    "MultiplicativeMartingale",
    "hoeffding_threshold",
    "KNNDistance",
    "MeanDistance",
    "MahalanobisDistance",
    "conformal_pvalue",
    "conformal_pvalues_batch",
]
