"""End-to-end drift-aware video analytics (paper Figure 1).

``DriftAwareAnalytics`` is the public façade over the staged
:class:`~repro.runtime.kernel.RuntimeKernel`: frames are routed to the
Drift Inspector and processed by the currently deployed model; once a drift
is declared, a window of post-drift frames feeds the model selector (MSBI or
MSBO); the selected -- or freshly trained -- model is deployed, the
inspector's reference sample is swapped, and processing continues.

The pipeline is substrate-agnostic: it consumes any iterable of frame pixel
arrays (or objects with a ``pixels`` attribute) and reports per-frame
predictions, invocation counts, detection events and simulated time.

The actual staged loop -- admission, monitoring, adaptation, emission --
lives in :mod:`repro.runtime`; this module re-exports the result
dataclasses and configuration so existing imports keep working.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.core.selection.registry import ModelRegistry
from repro.core.selection.trainer import ModelTrainer
from repro.obs.recorder import NULL_RECORDER  # noqa: F401  (compat re-export)
from repro.runtime.emission import (
    _SELECTION_FRAMES_BUCKETS,
    DetectionEvent,
    FrameRecord,
    PipelineResult,
)
from repro.runtime.kernel import PipelineConfig, RuntimeKernel
from repro.runtime.protocols import DriftMonitor
from repro.sim.clock import SimulatedClock
from repro.video.frames import pixels_of as _pixels_of  # compat alias

__all__ = [
    "DetectionEvent",
    "DriftAwareAnalytics",
    "FrameRecord",
    "PipelineConfig",
    "PipelineResult",
]


class DriftAwareAnalytics:
    """The Figure 1 architecture (façade over :class:`RuntimeKernel`).

    Parameters
    ----------
    registry:
        Provisioned model bundles.
    initial_model:
        Name of the bundle deployed at stream start.
    selector:
        An :class:`MSBI` or :class:`MSBO` instance bound to ``registry``.
    annotator:
        ``frames -> labels`` callable.  Required when the selector is MSBO
        (window labels) or when a trainer may be invoked.
    trainer:
        Optional :class:`ModelTrainer` handling novel distributions.  Without
        one, a :class:`NovelDistribution` from the selector falls back to the
        closest provisioned model (and the event is flagged ``novel=True``).
    clock:
        Optional simulated clock shared with the components.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder`.  The pipeline binds
        its simulated clock to an unbound recorder, traces the DI / MSBI /
        retrain stages as spans, and emits the logical event stream
        (``session_start``, ``drift_detected``, ``model_deployed``, guard
        interventions, retries, breaker transitions).  Recording is passive
        and rolls back with the optimistic batched path, so attaching a
        recorder cannot change any output, and a disabled recorder (the
        default) costs only no-op calls.  Telemetry accumulates across
        sessions like the simulated clock does.
    monitor_factory:
        Optional ``bundle -> DriftMonitor`` callable backing the monitoring
        stage with a custom detector (ODIN, a statistical baseline, ...)
        instead of the default Drift Inspector.  It is invoked at
        construction and after every model swap.
    """

    def __init__(self, registry: ModelRegistry, initial_model: str,
                 selector: object,
                 annotator: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 trainer: Optional[ModelTrainer] = None,
                 config: Optional[PipelineConfig] = None,
                 clock: Optional[SimulatedClock] = None,
                 recorder: Optional[object] = None,
                 monitor_factory: Optional[
                     Callable[[object], DriftMonitor]] = None) -> None:
        self.kernel = RuntimeKernel(
            registry, initial_model, selector,
            annotator=annotator, trainer=trainer, config=config,
            clock=clock, recorder=recorder,
            monitor_factory=monitor_factory)

    # ------------------------------------------------------------------
    # stage handles (the kernel owns the state; these are views)
    # ------------------------------------------------------------------
    @property
    def registry(self) -> ModelRegistry:
        return self.kernel.registry

    @registry.setter
    def registry(self, registry: ModelRegistry) -> None:
        self.kernel.registry = registry

    @property
    def config(self) -> PipelineConfig:
        return self.kernel.config

    @property
    def selector(self):
        return self.kernel.adaptation.selector

    @property
    def annotator(self):
        return self.kernel.adaptation.annotator

    @property
    def trainer(self):
        return self.kernel.adaptation.trainer

    @property
    def clock(self) -> SimulatedClock:
        return self.kernel.clock

    @property
    def obs(self):
        return self.kernel.obs

    @property
    def guard(self):
        return self.kernel.admission.guard

    @property
    def breaker(self):
        return self.kernel.admission.breaker

    @property
    def inspector(self) -> DriftMonitor:
        """The live monitor behind the monitoring stage (a
        :class:`~repro.core.drift_inspector.DriftInspector` unless a custom
        ``monitor_factory`` was supplied)."""
        return self.kernel.monitor.monitor

    @property
    def deployed_model(self) -> str:
        return self.kernel.deployed.name

    @property
    def deployed_bundle(self):
        """The currently deployed :class:`ModelBundle` (read-only handle;
        the serving layer's degrade path predicts with its model without
        touching the drift inspector)."""
        return self.kernel.deployed

    def predict_degraded(self, pixels) -> int:
        """The serving layer's cheap pass (see
        :meth:`RuntimeKernel.predict_degraded`): deployed-model
        prediction only, no drift-inspection state touched."""
        return self.kernel.predict_degraded(pixels)

    def screen_degraded(self, pixels):
        """Stateless tier-0 suspicion for a degraded-pass frame (see
        :meth:`RuntimeKernel.screen_degraded`); ``None`` when the
        session's monitor offers no screen."""
        return self.kernel.screen_degraded(pixels)

    @property
    def _records(self) -> List[FrameRecord]:
        return self.kernel.emission.records

    def _deploy(self, name: str) -> None:
        self.kernel.deploy(name)

    # ------------------------------------------------------------------
    # streaming API (delegation)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin a streaming session (push-based processing via
        :meth:`step` / :meth:`flush`)."""
        self.kernel.start()

    def step(self, item: object) -> List[FrameRecord]:
        """Push one frame; returns the records it emitted (possibly none
        while post-drift frames are being buffered for selection or
        training, or when the guard quarantined the frame)."""
        return self.kernel.step(item)

    def step_batch(self, items: Iterable[object],
                   batch_size: int = 64) -> List[FrameRecord]:
        """Push a window of frames through the batched monitor path
        (see :meth:`RuntimeKernel.step_batch`): bit-identical to calling
        :meth:`step` once per item, for any ``batch_size``."""
        return self.kernel.step_batch(items, batch_size=batch_size)

    def flush(self) -> List[FrameRecord]:
        """End the stream: resolve any frames still buffered."""
        return self.kernel.flush()

    def result(self) -> PipelineResult:
        """The session's aggregated outcome so far."""
        return self.kernel.result()

    def process(self, stream: Iterable[object]) -> PipelineResult:
        """Run the full loop over ``stream``; returns aggregated results.

        Equivalent to :meth:`start` + :meth:`step` per item + :meth:`flush`;
        use those directly for push-based (live) processing.
        """
        return self.kernel.process(stream)

    def process_batched(self, stream: Iterable[object],
                        batch_size: int = 64) -> PipelineResult:
        """Batched counterpart of :meth:`process`; produces bit-identical
        results for any ``batch_size``."""
        return self.kernel.process_batched(stream, batch_size=batch_size)

    # ------------------------------------------------------------------
    # Snapshotable (whole-session capture; see repro.core.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Capture the live session via the kernel's
        :class:`~repro.runtime.protocols.Snapshotable` surface."""
        return self.kernel.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore a captured session into this freshly constructed
        pipeline (same registry, selector and configuration)."""
        self.kernel.load_state_dict(state)
