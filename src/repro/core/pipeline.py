"""End-to-end drift-aware video analytics (paper Figure 1).

``DriftAwareAnalytics`` wires the pieces together: frames are routed to the
Drift Inspector and processed by the currently deployed model; once a drift
is declared, a window of post-drift frames feeds the model selector (MSBI or
MSBO); the selected -- or freshly trained -- model is deployed, the
inspector's reference sample is swapped, and processing continues.

The pipeline is substrate-agnostic: it consumes any iterable of frame pixel
arrays (or objects with a ``pixels`` attribute) and reports per-frame
predictions, invocation counts, detection events and simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.selection.msbi import MSBI
from repro.core.selection.msbo import MSBO
from repro.core.selection.registry import ModelRegistry, NovelDistribution
from repro.core.selection.trainer import ModelTrainer
from repro.errors import ConfigurationError
from repro.faults.guard import (
    GUARD_POLICIES,
    OK,
    QUARANTINED,
    CircuitBreaker,
    FrameGuard,
    RetryPolicy,
)
from repro.faults.injectors import _with_pixels
from repro.obs.recorder import NULL_RECORDER
from repro.sim.clock import SimulatedClock
from repro.sim.metrics import FaultStats, InvocationCounter

#: Fixed buckets for the per-detection selection-window-size histogram.
_SELECTION_FRAMES_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class PipelineConfig:
    """Pipeline-level knobs.

    ``selection_window`` is the number of post-drift frames buffered for the
    selector (W_N for MSBI, W_T for MSBO); ``training_budget`` overrides the
    trainer's frame collection budget when a novel distribution appears.

    Fault tolerance: ``frame_policy`` governs the
    :class:`~repro.faults.guard.FrameGuard` at the pipeline boundary
    (``"raise"`` fails fast on invalid frames, ``"skip"`` quarantines them,
    ``"repair"`` imputes from the last good frame); selector / trainer calls
    get ``max_retries`` retries with ``retry_backoff_ms`` simulated-clock
    backoff, and ``breaker_threshold`` consecutive resolution failures trip
    a circuit breaker that pins the nearest provisioned model instead of
    crashing.
    """

    selection_window: int = 10
    training_budget: Optional[int] = None
    cooldown_frames: int = 25
    frame_policy: str = "raise"
    max_retries: int = 2
    retry_backoff_ms: float = 50.0
    breaker_threshold: int = 3
    drift_inspector: DriftInspectorConfig = field(
        default_factory=DriftInspectorConfig)

    def __post_init__(self) -> None:
        if self.selection_window <= 0:
            raise ConfigurationError(
                f"selection_window must be positive: {self.selection_window}")
        if self.cooldown_frames < 0:
            raise ConfigurationError(
                f"cooldown_frames must be non-negative: {self.cooldown_frames}")
        if self.frame_policy not in GUARD_POLICIES:
            raise ConfigurationError(
                f"frame_policy must be one of {GUARD_POLICIES}, "
                f"got {self.frame_policy!r}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative: {self.max_retries}")
        if self.retry_backoff_ms < 0:
            raise ConfigurationError(
                f"retry_backoff_ms must be non-negative: "
                f"{self.retry_backoff_ms}")
        if self.breaker_threshold <= 0:
            raise ConfigurationError(
                f"breaker_threshold must be positive: "
                f"{self.breaker_threshold}")


@dataclass
class DetectionEvent:
    """One drift detection + recovery episode."""

    frame_index: int
    previous_model: str
    selected_model: str
    novel: bool
    selection_frames: int


@dataclass
class FrameRecord:
    """Per-frame processing outcome."""

    frame_index: int
    prediction: int
    model: str


@dataclass
class PipelineResult:
    """Aggregated output of one :meth:`DriftAwareAnalytics.process` run.

    ``faults`` carries the session's degradation accounting: guard verdicts
    (repaired / quarantined frames), retries, and circuit-breaker activity.
    ``telemetry`` is the attached recorder's snapshot (the schema-validated
    ``summary`` plus the retained event stream) -- ``None`` when the
    pipeline ran with the default no-op recorder.
    """

    records: List[FrameRecord]
    detections: List[DetectionEvent]
    invocations: InvocationCounter
    simulated_ms: float
    faults: FaultStats = field(default_factory=FaultStats)
    telemetry: Optional[dict] = None

    @property
    def predictions(self) -> np.ndarray:
        return np.asarray([r.prediction for r in self.records], dtype=np.int64)

    @property
    def models_used(self) -> List[str]:
        return [r.model for r in self.records]


def _pixels_of(item: object) -> np.ndarray:
    pixels = getattr(item, "pixels", item)
    return np.asarray(pixels, dtype=np.float64)


class DriftAwareAnalytics:
    """The Figure 1 architecture.

    Parameters
    ----------
    registry:
        Provisioned model bundles.
    initial_model:
        Name of the bundle deployed at stream start.
    selector:
        An :class:`MSBI` or :class:`MSBO` instance bound to ``registry``.
    annotator:
        ``frames -> labels`` callable.  Required when the selector is MSBO
        (window labels) or when a trainer may be invoked.
    trainer:
        Optional :class:`ModelTrainer` handling novel distributions.  Without
        one, a :class:`NovelDistribution` from the selector falls back to the
        closest provisioned model (and the event is flagged ``novel=True``).
    clock:
        Optional simulated clock shared with the components.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder`.  The pipeline binds
        its simulated clock to an unbound recorder, traces the DI / MSBI /
        retrain stages as spans, and emits the logical event stream
        (``session_start``, ``drift_detected``, ``model_deployed``, guard
        interventions, retries, breaker transitions).  Recording is passive
        and rolls back with the optimistic batched path, so attaching a
        recorder cannot change any output, and a disabled recorder (the
        default) costs only no-op calls.  Telemetry accumulates across
        sessions like the simulated clock does.
    """

    def __init__(self, registry: ModelRegistry, initial_model: str,
                 selector: object,
                 annotator: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 trainer: Optional[ModelTrainer] = None,
                 config: Optional[PipelineConfig] = None,
                 clock: Optional[SimulatedClock] = None,
                 recorder: Optional[object] = None) -> None:
        self.registry = registry
        self.config = config or PipelineConfig()
        if not isinstance(selector, (MSBI, MSBO)):
            raise ConfigurationError(
                f"selector must be MSBI or MSBO, got {type(selector).__name__}")
        if isinstance(selector, MSBO) and annotator is None:
            raise ConfigurationError("MSBO selection requires an annotator")
        self.selector = selector
        self.annotator = annotator
        self.trainer = trainer
        self.clock = clock or SimulatedClock()
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.obs.bind_clock(self.clock)
        self._c_emitted = self.obs.counter("pipeline.frames_emitted")
        self._c_detections = self.obs.counter("pipeline.detections")
        self._h_selection_frames = self.obs.histogram(
            "pipeline.selection_frames", _SELECTION_FRAMES_BUCKETS)
        self.guard = FrameGuard(policy=self.config.frame_policy,
                                observer=self._on_guard)
        self.breaker = CircuitBreaker(threshold=self.config.breaker_threshold,
                                      on_trip=self._on_breaker_trip,
                                      on_close=self._on_breaker_close)
        self._retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            backoff_ms=self.config.retry_backoff_ms)
        self._faults = FaultStats()
        self._deploy(initial_model)

    # ------------------------------------------------------------------
    @property
    def deployed_model(self) -> str:
        return self._deployed.name

    @property
    def deployed_bundle(self):
        """The currently deployed :class:`ModelBundle` (read-only handle;
        the serving layer's degrade path predicts with its model without
        touching the drift inspector)."""
        return self._deployed

    def _deploy(self, name: str) -> None:
        self._deployed = self.registry.get(name)
        self.inspector = DriftInspector(
            self._deployed.sigma,
            config=self.config.drift_inspector,
            embedder=self._deployed.vae,
            clock=self.clock,
            recorder=self.obs)

    # ------------------------------------------------------------------
    # observability hooks (passive: they only record, never decide)
    # ------------------------------------------------------------------
    def _on_guard(self, status: str, index: int,
                  reason: Optional[str]) -> None:
        self.obs.event(f"frame_{status}", frame=index, reason=reason)

    def _on_breaker_trip(self, breaker: CircuitBreaker) -> None:
        self.obs.event("breaker_open", failures=breaker.failures,
                       trips=breaker.trips)

    def _on_breaker_close(self, breaker: CircuitBreaker) -> None:
        self.obs.event("breaker_close", trips=breaker.trips)

    # ------------------------------------------------------------------
    def _predict(self, pixels: np.ndarray) -> int:
        self.clock.charge("classifier_infer")
        return int(self._deployed.model.predict(pixels[None, ...])[0])

    def _try_select(self, items: List[object], window: np.ndarray) -> str:
        """Run the selector on the buffered window.

        ``items`` are the original stream items (carrying ground truth for
        the annotator); ``window`` their stacked pixel arrays.  Raises
        :class:`NovelDistribution` when no provisioned model fits.
        """
        with self.obs.span("selection.select"):
            if isinstance(self.selector, MSBO):
                labels = np.asarray(self.annotator(items), dtype=np.int64)
                return self.selector.select(window, labels)
            return self.selector.select(window)

    def _train_new(self, items: List[object]) -> str:
        """Build and register a bundle from collected post-drift items."""
        with self.obs.span("selection.train"):
            pixels = np.stack([_pixels_of(item) for item in items])
            labels = None
            if self.annotator is not None:
                labels = np.asarray(self.annotator(items), dtype=np.int64)
            name = f"novel_{len(self.registry)}"
            bundle = self.trainer.train_new_model(name, pixels, labels=labels)
            self.registry.replace(bundle)
            return name

    def _fallback_model(self, window: np.ndarray) -> str:
        with self.obs.span("selection.fallback"):
            best_name, best = None, float("inf")
            for bundle in self.registry:
                latents = bundle.embed(window)
                centroid = bundle.sigma.mean(axis=0)
                dist = float(
                    np.sqrt(((latents - centroid) ** 2).sum(axis=1)).mean())
                if dist < best:
                    best, best_name = dist, bundle.name
            return best_name

    # ------------------------------------------------------------------
    # degraded resolution: retries + circuit breaker around the
    # selection / training path
    # ------------------------------------------------------------------
    def _count_retry(self, attempt: int, error: BaseException) -> None:
        self._faults.retries += 1
        self.obs.event("retry", attempt=attempt,
                       error=type(error).__name__)

    def _with_retries(self, fn):
        """Run a selector / trainer call under the retry policy.

        ``NovelDistribution`` is a control-flow signal, not a failure, so it
        propagates without consuming retries.
        """
        return self._retry_policy.run(
            fn, clock=self.clock, retryable=(Exception,),
            non_retryable=(NovelDistribution,),
            on_retry=self._count_retry)

    def _train_or_fallback(self, items: List[object],
                           window: np.ndarray) -> str:
        """Train a new bundle; degrade to the nearest provisioned model when
        training is impossible (no trainer, too few frames) or keeps
        failing."""
        if self.trainer is None or len(items) < 2:
            return self._fallback_model(window)
        try:
            name = self._with_retries(lambda: self._train_new(items))
        except Exception:
            self._faults.training_failures += 1
            self.breaker.record_failure()
            return self._fallback_model(window)
        self.breaker.record_success()
        return name

    def _decide_model(self, items: List[object], window: np.ndarray,
                      novel_hint: bool):
        """Pick the model for a drift episode; returns ``(name, novel)``.

        Never raises (beyond programming errors in the fallback itself):
        selection and training run under retry, repeated failures trip the
        breaker, and an open breaker pins the nearest provisioned model
        without attempting selection at all.
        """
        if self.breaker.is_open:
            self._faults.breaker_fallbacks += 1
            return self._fallback_model(window), novel_hint
        if novel_hint:
            return self._train_or_fallback(items, window), True
        try:
            selected = self._with_retries(lambda: self._try_select(
                items[: self.config.selection_window],
                window[: self.config.selection_window]))
        except NovelDistribution:
            return self._train_or_fallback(items, window), True
        except Exception:
            self._faults.selection_failures += 1
            self.breaker.record_failure()
            return self._fallback_model(window), False
        self.breaker.record_success()
        return selected, False

    # ------------------------------------------------------------------
    # streaming API
    # ------------------------------------------------------------------
    _MODE_MONITOR = "monitor"
    _MODE_SELECT = "select-buffer"
    _MODE_TRAIN = "train-buffer"

    def start(self) -> None:
        """Begin a streaming session (push-based processing via
        :meth:`step` / :meth:`flush`)."""
        self._records: List[FrameRecord] = []
        self._detections: List[DetectionEvent] = []
        self._invocations = InvocationCounter()
        self._faults = FaultStats()
        self.guard.reset()
        self.breaker.reset()
        self._start_ms = self.clock.elapsed_ms
        self.obs.event("session_start", model=self._deployed.name,
                       registry_size=len(self.registry))
        self.obs.gauge("pipeline.registry_size").set(len(self.registry))
        self._buffer: List[object] = []
        self._mode = self._MODE_MONITOR
        self._index = 0
        self._frames_since_swap = self.config.cooldown_frames  # armed

    def _training_budget(self) -> int:
        if self.config.training_budget is not None:
            return self.config.training_budget
        return self.trainer.config.frames_to_collect

    def _emit(self, pixels: np.ndarray) -> FrameRecord:
        prediction = self._predict(pixels)
        record = FrameRecord(self._index, prediction, self._deployed.name)
        self._records.append(record)
        self._invocations.record([self._deployed.name])
        self._c_emitted.inc()
        self._index += 1
        return record

    def _emit_batch(self, pixels: np.ndarray) -> List[FrameRecord]:
        """Emit a ``(B, ...)`` stack of admitted monitor frames.

        One batched classifier call replaces ``B`` per-frame predicts; the
        clock, record list, and invocation ledger advance exactly as ``B``
        sequential :meth:`_emit` calls would.
        """
        self.clock.charge("classifier_infer", times=pixels.shape[0])
        predictions = self._deployed.model.predict(pixels)
        name = self._deployed.name
        start = self._index
        batch_records = [FrameRecord(start + offset, int(prediction), name)
                         for offset, prediction in enumerate(predictions)]
        self._records.extend(batch_records)
        self._invocations.record_repeat([name], len(batch_records))
        self._c_emitted.inc(len(batch_records))
        self._index = start + len(batch_records)
        return batch_records

    def _resolve_buffer(self, selected: Optional[str] = None,
                        novel_hint: bool = False) -> List[FrameRecord]:
        """Deploy ``selected`` (running selection/training if not already
        decided) and emit the buffered frames under the new model."""
        items = self._buffer
        self._buffer = []
        window = np.stack([_pixels_of(entry) for entry in items])
        previous = self._deployed.name
        novel = novel_hint
        with self.obs.span("selection.resolve"):
            if selected is None:
                selected, novel = self._decide_model(items, window, novel_hint)
            self._detections.append(DetectionEvent(
                frame_index=self._index, previous_model=previous,
                selected_model=selected, novel=novel,
                selection_frames=len(items)))
            self.obs.event("drift_detected", frame=self._index,
                           previous_model=previous, novel=novel,
                           selection_frames=len(items))
            self._c_detections.inc()
            self._h_selection_frames.observe(float(len(items)))
            self._deploy(selected)
            self.obs.event("model_deployed", model=selected,
                           registry_size=len(self.registry))
            self.obs.gauge("pipeline.registry_size").set(len(self.registry))
        self._mode = self._MODE_MONITOR
        self._frames_since_swap = 0
        return [self._emit(pixels) for pixels in window]

    def step(self, item: object) -> List[FrameRecord]:
        """Push one frame; returns the records it emitted (possibly none
        while post-drift frames are being buffered for selection or
        training, or when the guard quarantined the frame)."""
        if not hasattr(self, "_mode"):
            self.start()
        admitted = self._admit(item)
        if admitted is None:
            return []
        return self._step_admitted(*admitted)

    def _admit(self, item: object):
        """Run the frame guard on ``item``.

        Returns ``(item, pixels)`` -- with repaired pixels folded back into
        the item -- or ``None`` when the frame was quarantined.  Guard state
        and fault accounting advance exactly as :meth:`step` would.
        """
        report = self.guard.admit(item)
        if report.status == QUARANTINED:
            self._faults.frames_quarantined += 1
            self._faults.quarantine_reasons[report.reason] = (
                self._faults.quarantine_reasons.get(report.reason, 0) + 1)
            return None
        pixels = report.pixels
        if report.status == OK:
            self._faults.frames_ok += 1
        else:  # repaired: carry the imputed pixels, keep any metadata
            self._faults.frames_repaired += 1
            item = _with_pixels(item, pixels)
        return item, pixels

    def _step_admitted(self, item: object,
                       pixels: np.ndarray) -> List[FrameRecord]:
        """The post-guard remainder of :meth:`step` (mode dispatch)."""
        if self._mode == self._MODE_SELECT:
            self._buffer.append(item)
            if len(self._buffer) < self.config.selection_window:
                return []
            # window full: try selection; a novel distribution with a
            # trainer keeps buffering up to the training budget
            window = np.stack([_pixels_of(e) for e in self._buffer])
            if self.breaker.is_open:
                self._faults.breaker_fallbacks += 1
                return self._resolve_buffer(
                    selected=self._fallback_model(window))
            try:
                selected = self._with_retries(
                    lambda: self._try_select(self._buffer, window))
            except NovelDistribution:
                if self.trainer is not None:
                    self._mode = self._MODE_TRAIN
                    return []
                # no trainer: degrade to the nearest provisioned model
                return self._resolve_buffer(
                    selected=self._fallback_model(window), novel_hint=True)
            except Exception:
                self._faults.selection_failures += 1
                self.breaker.record_failure()
                return self._resolve_buffer(
                    selected=self._fallback_model(window))
            self.breaker.record_success()
            return self._resolve_buffer(selected=selected)
        if self._mode == self._MODE_TRAIN:
            self._buffer.append(item)
            if len(self._buffer) < self._training_budget():
                return []
            return self._resolve_buffer(novel_hint=True)
        # monitoring
        decision = self.inspector.observe(pixels)
        if decision.drift and (self._frames_since_swap
                               < self.config.cooldown_frames):
            # residual transient right after a model swap: the fresh
            # reference needs a few frames to settle -- restart the
            # martingale rather than re-triggering selection
            self.inspector.reset()
            decision = None
        self._frames_since_swap += 1
        if decision is not None and decision.drift:
            self._mode = self._MODE_SELECT
            self._buffer = [item]
            return []
        return [self._emit(pixels)]

    def step_batch(self, items: Iterable[object],
                   batch_size: int = 64) -> List[FrameRecord]:
        """Push a window of frames through the batched monitor path.

        Equivalent to calling :meth:`step` once per item, for any
        ``batch_size``: records, detections, invocation counts, fault stats
        and the simulated clock all end up bit-identical, so batched and
        sequential processing (and different chunkings of the same stream,
        e.g. after a checkpoint restore) are interchangeable.

        Monitoring chunks are observed with
        :meth:`~repro.core.drift_inspector.DriftInspector.observe_batch`
        (``exact_embed=True``) and emitted with one batched classifier call.
        The batching is *optimistic*: the inspector and clock are
        snapshotted before each chunk, and a drift flag anywhere inside it
        rolls both back and replays the chunk frame by frame so the
        post-drift buffering, cooldown and selection logic run exactly as
        the sequential path.  Frames arriving outside monitor mode (buffer
        filling, cooldown) take the scalar path directly.
        """
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive: {batch_size}")
        if not hasattr(self, "_mode"):
            self.start()
        items = list(items)
        records: List[FrameRecord] = []
        i = 0
        while i < len(items):
            if (self._mode != self._MODE_MONITOR
                    or self._frames_since_swap < self.config.cooldown_frames
                    or self.inspector.drift_detected):
                records.extend(self.step(items[i]))
                i += 1
                continue
            chunk = items[i:i + batch_size]
            i += len(chunk)
            pixels = self.guard.admit_batch(chunk)
            if pixels is not None:
                # uniformly clean chunk: one vectorized guard pass stands in
                # for len(chunk) scalar admits; items pass through untouched
                self._faults.frames_ok += pixels.shape[0]
                admitted = None
            else:
                entries = []
                for item in chunk:
                    entry = self._admit(item)
                    if entry is not None:
                        entries.append(entry)
                if not entries:
                    continue
                admitted = entries
                pixels = np.stack([p for _, p in entries])
            # optimistic batched observation: snapshot the inspector and
            # clock so a drift inside the chunk can roll back and replay
            # with sequential-exact accounting
            inspector_state = self.inspector.state_dict()
            saved_decisions = list(self.inspector.decisions)
            clock_state = self.clock.state_dict()
            obs_state = self.obs.state_dict()
            decisions = self.inspector.observe_batch(pixels, exact_embed=True)
            if not any(d.drift for d in decisions):
                self._frames_since_swap += pixels.shape[0]
                records.extend(self._emit_batch(pixels))
                continue
            self.inspector.load_state_dict(inspector_state)
            self.inspector.decisions = saved_decisions
            self.clock.load_state_dict(clock_state)
            self.obs.load_state_dict(obs_state)
            if admitted is None:
                admitted = list(zip(chunk, pixels))
            for entry in admitted:
                records.extend(self._step_admitted(*entry))
        return records

    def flush(self) -> List[FrameRecord]:
        """End the stream: resolve any frames still buffered.

        A partial selection window is evaluated as-is; a partial training
        buffer trains on whatever was collected, deterministically falling
        back to the nearest provisioned model when fewer than two frames
        are available (training needs at least two).
        """
        if not hasattr(self, "_mode"):
            self.start()
        if not self._buffer:
            return []
        if self._mode == self._MODE_TRAIN:
            return self._resolve_buffer(novel_hint=True)
        return self._resolve_buffer()

    def result(self) -> PipelineResult:
        """The session's aggregated outcome so far."""
        if not hasattr(self, "_mode"):
            self.start()
        self._faults.breaker_trips = self.breaker.trips
        return PipelineResult(
            records=self._records, detections=self._detections,
            invocations=self._invocations,
            simulated_ms=self.clock.elapsed_ms - self._start_ms,
            faults=self._faults,
            telemetry=self.obs.snapshot())

    # ------------------------------------------------------------------
    def process(self, stream: Iterable[object]) -> PipelineResult:
        """Run the full loop over ``stream``; returns aggregated results.

        Equivalent to :meth:`start` + :meth:`step` per item + :meth:`flush`;
        use those directly for push-based (live) processing.
        """
        self.start()
        for item in stream:
            self.step(item)
        self.flush()
        return self.result()

    def process_batched(self, stream: Iterable[object],
                        batch_size: int = 64) -> PipelineResult:
        """Batched counterpart of :meth:`process` (see :meth:`step_batch`);
        produces bit-identical results for any ``batch_size``."""
        self.start()
        self.step_batch(stream, batch_size=batch_size)
        self.flush()
        return self.result()
