"""Betting functions (paper Sections 4.1 and 4.2.4).

Two families are supported:

- **Multiplicative** betting functions ``g`` with ``integral_0^1 g(p) dp = 1``
  feed the product martingale of Eq. 5.  They return large values for small
  p-values (strange observations) and small values for p-values near 1.
- **Additive** betting functions with ``integral_0^1 g(p) dp = 0`` feed the
  additive martingale of Eq. 10.  The paper constructs them from shifted odd
  functions: any odd ``f`` on [-1/2, 1/2] yields a valid ``g(p) = f(p - 1/2)``.

Algorithm 1 applies ``log(g(p))`` inside a CUSUM-style update.  For a
multiplicative ``g`` the log-scores have negative expectation under the null
(Jensen) and large positive values under drift, which is exactly the CUSUM
behaviour the algorithm's ``max(0, S + log g(p))`` update exploits.
:class:`LogScore` packages that, including the p-value floor that keeps the
log finite when ties push ``p`` to exactly 0.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class BettingFunction:
    """Base class.  ``kind`` is ``"multiplicative"`` or ``"additive"``."""

    kind: str = "multiplicative"

    def __call__(self, p: float) -> float:
        raise NotImplementedError

    def batch(self, ps: np.ndarray) -> np.ndarray:
        """Evaluate ``g`` over a 1-D array of p-values.

        The default walks the scalar path element by element, which keeps
        stateful bets (e.g. :class:`HistogramBetting`) exact; vectorizable
        subclasses override it with ufunc evaluation that is bit-identical
        to the scalar path (numpy applies the same per-element kernels to
        arrays and scalars).
        """
        ps = self._check_ps(ps)
        return np.asarray([self(float(p)) for p in ps], dtype=np.float64)

    def _check_p(self, p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p-value must be in [0, 1], got {p}")
        return float(p)

    def _check_ps(self, ps: np.ndarray) -> np.ndarray:
        arr = np.asarray(ps, dtype=np.float64).reshape(-1)
        if arr.size and (arr.min() < 0.0 or arr.max() > 1.0):
            raise ConfigurationError(
                f"p-values must be in [0, 1], got range "
                f"[{arr.min()}, {arr.max()}]")
        return arr


class ConstantBetting(BettingFunction):
    """``g(p) = 1``: the do-nothing bet.  The product martingale stays at 1,
    so no drift is ever declared -- useful as a null control."""

    kind = "multiplicative"

    def __call__(self, p: float) -> float:
        self._check_p(p)
        return 1.0

    def batch(self, ps: np.ndarray) -> np.ndarray:
        return np.ones_like(self._check_ps(ps))


class PowerBetting(BettingFunction):
    """``g(p) = epsilon * p^(epsilon - 1)`` for ``epsilon`` in (0, 1).

    Integrates to 1; diverges as ``p -> 0`` so small p-values (strange
    frames) grow the martingale fast.  Smaller ``epsilon`` bets more
    aggressively on strangeness.
    """

    kind = "multiplicative"

    def __init__(self, epsilon: float = 0.3) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon

    def __call__(self, p: float) -> float:
        p = self._check_p(p)
        if p == 0.0:
            return float("inf")
        # np.power (not python **) so the scalar and batch paths run the
        # same libm kernel and stay bit-identical
        return float(self.epsilon * np.power(p, self.epsilon - 1.0))

    def batch(self, ps: np.ndarray) -> np.ndarray:
        ps = self._check_ps(ps)
        with np.errstate(divide="ignore"):
            out = self.epsilon * np.power(ps, self.epsilon - 1.0)
        return out


class MixtureBetting(BettingFunction):
    """Mixture of power bets over ``epsilon ~ Uniform(0, 1)``.

    ``g(p) = integral_0^1 eps p^(eps-1) d eps = (ln p - 1 + 1/p) / ln^2 p``.
    Parameter-free and valid for any drift magnitude, at the cost of slower
    growth than a well-tuned :class:`PowerBetting`.
    """

    kind = "multiplicative"

    def __call__(self, p: float) -> float:
        p = self._check_p(p)
        if p == 0.0:
            return float("inf")
        if p == 1.0 or abs(p - 1.0) < 1e-8:
            # limit of the closed form as p -> 1 is 1/2
            return 0.5
        u = np.log(p)
        return float((u - 1.0 + 1.0 / p) / (u * u))

    def batch(self, ps: np.ndarray) -> np.ndarray:
        ps = self._check_ps(ps)
        out = np.empty_like(ps)
        zero = ps == 0.0
        one = np.abs(ps - 1.0) < 1e-8
        interior = ~(zero | one)
        out[zero] = np.inf
        out[one] = 0.5
        p = ps[interior]
        u = np.log(p)
        out[interior] = (u - 1.0 + 1.0 / p) / (u * u)
        return out


class ShiftedOddBetting(BettingFunction):
    """Additive betting function ``g(p) = f(p - 1/2)`` for odd ``f``
    (paper Section 4.2.4; default ``f(x) = -x`` giving ``g(p) = 1/2 - p``).

    Integrates to 0, is bounded by ``scale / 2`` in absolute value, and is
    positive for small p-values so drifting streams push the additive
    martingale up.  ``power`` sharpens the response: ``f(x) =
    -sign(x) * |2x|^power / 2``.
    """

    kind = "additive"

    def __init__(self, scale: float = 1.0, power: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        if power <= 0:
            raise ConfigurationError(f"power must be positive, got {power}")
        self.scale = scale
        self.power = power

    def __call__(self, p: float) -> float:
        p = self._check_p(p)
        x = p - 0.5
        # np.power keeps the scalar and batch paths bit-identical
        magnitude = 0.5 * np.power(abs(2.0 * x), self.power)
        return float(-np.sign(x) * magnitude * self.scale)

    def batch(self, ps: np.ndarray) -> np.ndarray:
        ps = self._check_ps(ps)
        x = ps - 0.5
        magnitude = 0.5 * np.power(np.abs(2.0 * x), self.power)
        return -np.sign(x) * magnitude * self.scale

    @property
    def bound(self) -> float:
        """``max |g(p)|`` -- feeds the Hoeffding-Azuma threshold."""
        return 0.5 * self.scale


class HistogramBetting(BettingFunction):
    """Adaptive plug-in betting: bet the estimated density of past p-values.

    The optimal betting function is the true density of the incoming
    p-values (Volkhonskiy et al.); this estimator maintains a regularised
    histogram of the p-values seen so far and bets the current density
    estimate.  Under the null the estimate converges to the uniform density
    (g = 1, no growth); under drift it concentrates where the drifted
    p-values fall and the martingale grows without hand-tuning ``epsilon``.
    The paper lists betting-function exploration as future work; this is the
    standard adaptive choice from the conformal martingale literature.

    Caveat: paired with an *unwindowed* product martingale, adaptive betting
    is consistent against any deviation from uniformity -- including the
    tiny granularity effects of finite calibration sets -- so over long null
    streams it will eventually fire.  Use it with the windowed additive
    machine (Algorithm 1), whose rate test only examines the last ``W``
    increments, or keep the parametric bets for unwindowed use.
    """

    kind = "multiplicative"

    def __init__(self, bins: int = 10, prior_count: float = 2.0) -> None:
        if bins < 2:
            raise ConfigurationError(f"bins must be >= 2, got {bins}")
        if prior_count <= 0:
            raise ConfigurationError(
                f"prior_count must be positive, got {prior_count}")
        self.bins = bins
        self.prior_count = prior_count
        self._counts = np.full(bins, prior_count, dtype=np.float64)

    def _bin(self, p: float) -> int:
        return min(int(p * self.bins), self.bins - 1)

    def __call__(self, p: float) -> float:
        p = self._check_p(p)
        index = self._bin(p)
        total = self._counts.sum()
        # bet on the *current* estimate, then update with the observation
        # (betting after updating would peek at the outcome and break the
        # martingale property)
        density = self._counts[index] * self.bins / total
        self._counts[index] += 1.0
        return float(density)

    def reset(self) -> None:
        """Forget all observed p-values."""
        self._counts = np.full(self.bins, self.prior_count, dtype=np.float64)

    def state_dict(self) -> dict:
        """Serializable snapshot of the adaptive histogram."""
        return {"counts": self._counts.tolist()}

    def load_state_dict(self, state: dict) -> None:
        counts = np.asarray(state["counts"], dtype=np.float64)
        if counts.shape != (self.bins,):
            raise ConfigurationError(
                f"histogram state has {counts.shape[0]} bins, "
                f"betting configured for {self.bins}")
        self._counts = counts


class LogScore:
    """``log g(max(p, p_floor))`` for a multiplicative betting function.

    This is the increment used in Algorithm 1 line 10.  ``p_floor`` bounds
    the score from above (keeping the Hoeffding-Azuma test applicable with a
    finite range) and avoids ``log(inf)`` when tie-smoothing yields ``p = 0``.
    """

    def __init__(self, betting: BettingFunction, p_floor: float = 1e-3) -> None:
        if betting.kind != "multiplicative":
            raise ConfigurationError(
                "LogScore requires a multiplicative betting function")
        if not 0.0 < p_floor < 1.0:
            raise ConfigurationError(
                f"p_floor must be in (0, 1), got {p_floor}")
        self.betting = betting
        self.p_floor = p_floor

    def __call__(self, p: float) -> float:
        p = max(min(float(p), 1.0), self.p_floor)
        return float(np.log(self.betting(p)))

    def batch(self, ps: np.ndarray) -> np.ndarray:
        """Increments for a 1-D array of p-values, bit-identical to the
        scalar path (same clipping, same betting kernel, same log)."""
        ps = np.asarray(ps, dtype=np.float64).reshape(-1)
        clipped = np.maximum(np.minimum(ps, 1.0), self.p_floor)
        return np.log(self.betting.batch(clipped))

    @property
    def max_score(self) -> float:
        """Largest possible increment (score at the p-value floor)."""
        return float(np.log(self.betting(self.p_floor)))
