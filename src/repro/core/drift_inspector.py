"""The Drift Inspector algorithm (paper Section 4.3, Algorithm 1).

``DriftInspector`` monitors a video stream frame by frame against the i.i.d.
reference sample ``Sigma_T`` of the currently deployed model's training
distribution:

1. embed the frame into the VAE latent space (optional -- callers may pass
   pre-embedded latents),
2. compute the KNN nonconformity score ``a_f`` against ``Sigma_T``
   (Algorithm 1 line 3),
3. convert it to a smoothed conformal p-value using the precomputed
   reference scores ``A_i`` (lines 4-9),
4. update the additive conformal martingale with the betting log-score
   (line 10) and apply the windowed Hoeffding-Azuma test (lines 12-14).

The inspector pinpoints the exact frame where drift is declared and exposes
the martingale trajectory for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.betting import (
    HistogramBetting,
    LogScore,
    MixtureBetting,
    PowerBetting,
)
from repro.core.martingale import (
    AdditiveMartingale,
    MartingaleState,
    MultiplicativeMartingale,
)
from repro.core.nonconformity import KNNDistance, NonconformityMeasure
from repro.core.pvalues import PValueCalculator
from repro.errors import ConfigurationError, EmptyReferenceError
from repro.obs.metrics import DEFAULT_P_BUCKETS
from repro.obs.recorder import NULL_RECORDER
from repro.rng import SeedLike, ensure_rng
from repro.sim.clock import SimulatedClock


@dataclass
class DriftInspectorConfig:
    """Parameters of Algorithm 1 (paper defaults from Section 6.1)."""

    window: int = 3
    significance: float = 0.5
    k: int = 5
    betting_epsilon: float = 0.1
    p_floor: float = 6e-3
    cusum_reset: bool = True
    use_log_bound: bool = False
    two_sided: bool = True
    inductive_split: bool = True
    martingale: str = "additive"
    betting: str = "power"
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive: {self.window}")
        if not 0.0 < self.significance < 1.0:
            raise ConfigurationError(
                f"significance must be in (0, 1): {self.significance}")
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive: {self.k}")
        if not 0.0 < self.betting_epsilon < 1.0:
            raise ConfigurationError(
                f"betting_epsilon must be in (0, 1): {self.betting_epsilon}")
        if not 0.0 < self.p_floor < 1.0:
            raise ConfigurationError(
                f"p_floor must be in (0, 1): {self.p_floor}")
        if self.martingale not in ("additive", "multiplicative"):
            raise ConfigurationError(
                f"martingale must be 'additive' or 'multiplicative', "
                f"got {self.martingale!r}")
        if self.betting not in ("power", "mixture", "histogram"):
            raise ConfigurationError(
                f"betting must be 'power', 'mixture' or 'histogram', "
                f"got {self.betting!r}")


@dataclass
class DriftDecision:
    """Per-frame output of the inspector."""

    frame_index: int
    nonconformity: float
    p_value: float
    martingale: float
    drift: bool


class DriftInspector:
    """Stateful per-frame drift monitor (Algorithm 1).

    Parameters
    ----------
    reference:
        ``Sigma_T`` -- i.i.d. latent samples of the deployed model's training
        distribution, shape ``(N, D)``.
    embedder:
        Optional object with an ``embed(frames) -> (N, D)`` method (the VAE).
        When given, :meth:`observe` accepts raw frames; otherwise it expects
        pre-embedded latent vectors.
    reference_scores:
        Optional precomputed ``A_i`` scores; computed leave-one-out from
        ``reference`` when omitted.
    clock:
        Optional :class:`~repro.sim.clock.SimulatedClock`; when given, each
        observation charges the paper-calibrated per-frame costs.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder`.  Observations are
        traced as ``di.observe`` / ``di.observe_batch`` spans (with nested
        embedding spans), counted, and their p-values folded into the
        ``di.p_value`` histogram.  Recording is passive -- it cannot alter
        a decision -- and defaults to the shared no-op recorder.
    """

    def __init__(self, reference: np.ndarray,
                 config: Optional[DriftInspectorConfig] = None,
                 embedder: Optional[object] = None,
                 reference_scores: Optional[np.ndarray] = None,
                 measure: Optional[NonconformityMeasure] = None,
                 clock: Optional[SimulatedClock] = None,
                 recorder: Optional[object] = None) -> None:
        self.config = config or DriftInspectorConfig()
        self.reference = np.asarray(reference, dtype=np.float64)
        if self.reference.ndim != 2 or self.reference.shape[0] < 2:
            raise EmptyReferenceError(
                f"reference Sigma_T must be (N>=2, D), got {self.reference.shape}")
        self.embedder = embedder
        self.measure = measure or KNNDistance(k=self.config.k)
        self._bag, self.reference_scores = self._prepare_reference(
            self.reference, reference_scores)
        rng = ensure_rng(self.config.seed)
        self._pvalue = PValueCalculator(self.reference_scores, seed=rng)
        # dedicated rng for posterior-sampled embeddings: sharing the VAE's
        # internal stream would make detection depend on everything else
        # that touched the same VAE in the process
        self._embed_rng = np.random.default_rng(
            rng.integers(0, 2**63 - 1))
        self.martingale = self._build_martingale()
        self.clock = clock
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self._c_frames = self.obs.counter("di.frames_observed")
        self._h_pvalue = self.obs.histogram("di.p_value", DEFAULT_P_BUCKETS)
        self._frame_index = 0
        self.decisions: List[DriftDecision] = []
        self._drift_frame: Optional[int] = None

    # ------------------------------------------------------------------
    def _build_betting(self):
        if self.config.betting == "power":
            return PowerBetting(self.config.betting_epsilon)
        if self.config.betting == "mixture":
            return MixtureBetting()
        return HistogramBetting()

    def _build_martingale(self):
        """Algorithm 1's additive CUSUM machine (default) or the classic
        product martingale of Eq. 5 tested with Ville's inequality.

        The multiplicative machine's false-alarm probability over the whole
        stream is bounded by ``significance`` itself (Eq. 4), so pair it
        with a small value (e.g. 0.02), not the windowed test's r = 0.5.
        """
        if self.config.martingale == "multiplicative":
            return MultiplicativeMartingale(
                self._build_betting(), significance=self.config.significance)
        score = LogScore(self._build_betting(),
                         p_floor=self.config.p_floor)
        return AdditiveMartingale(
            score, window=self.config.window,
            significance=self.config.significance,
            cusum_reset=self.config.cusum_reset,
            use_log_bound=self.config.use_log_bound,
            max_history=max(4 * self.config.window, 64))

    # ------------------------------------------------------------------
    def _prepare_reference(self, reference: np.ndarray,
                           reference_scores: Optional[np.ndarray]):
        """Build the scoring bag and calibration scores ``A_i``.

        With ``inductive_split`` (the default) ``Sigma_T`` is split in half:
        the first half is the KNN *bag*, the second half the calibration
        points whose scores against the bag form ``A_i``.  Incoming frames
        are scored against the same bag, so calibration and test scores are
        exchangeable by construction.  Precomputing leave-one-out scores
        over the full ``Sigma_T`` instead (the paper-literal mode, used when
        ``inductive_split=False`` or when ``reference_scores`` are supplied)
        biases test p-values toward 1: a test frame picks neighbours among
        ``n`` candidates while each reference point only had ``n - 1``.
        """
        if reference_scores is not None:
            scores = np.asarray(reference_scores, dtype=np.float64)
            if scores.shape[0] != reference.shape[0]:
                raise ConfigurationError(
                    f"reference_scores length {scores.shape[0]} != "
                    f"reference size {reference.shape[0]}")
            return reference, scores
        if self.config.inductive_split and reference.shape[0] >= 8:
            half = reference.shape[0] // 2
            bag, calibration = reference[:half], reference[half:]
            # score_batch is bit-identical to scoring point by point and
            # turns the O(N) construction loop into one broadcast
            scores = self.measure.score_batch(calibration, bag)
            return bag, scores
        return reference, self.measure.reference_scores(reference)

    # ------------------------------------------------------------------
    @property
    def frames_processed(self) -> int:
        return self._frame_index

    @property
    def drift_detected(self) -> bool:
        return self._drift_frame is not None

    @property
    def drift_frame(self) -> Optional[int]:
        """Index of the frame at which drift was first declared."""
        return self._drift_frame

    # ------------------------------------------------------------------
    def _embed_block(self, frames: np.ndarray) -> np.ndarray:
        """Embed a ``(B, ...)`` stack in one embedder call; returns (B, D).

        Prefers posterior *sampling* so the frames' embeddings follow the
        same distribution ``Sigma_T`` was drawn from (Section 4.2.2).  The
        posterior-noise draws consume :attr:`_embed_rng` exactly as ``B``
        single-frame calls would (numpy generators fill arrays from the same
        bit stream), but the encoder's batched matmuls may differ from the
        single-frame path in low-order mantissa bits on blocked BLAS
        backends -- see :meth:`observe_batch`.
        """
        sample_embed = getattr(self.embedder, "sample_embed", None)
        if sample_embed is not None:
            try:
                latent = sample_embed(np.asarray(frames),
                                      rng=self._embed_rng)
            except TypeError:
                latent = sample_embed(np.asarray(frames))
        else:
            latent = self.embedder.embed(np.asarray(frames))
        return np.asarray(latent, dtype=np.float64).reshape(frames.shape[0], -1)

    def _embed(self, frame: np.ndarray) -> np.ndarray:
        if self.embedder is not None:
            if self.clock is not None:
                self.clock.charge("vae_encode")
            return self._embed_block(np.asarray(frame)[None, ...])[0]
        return np.asarray(frame, dtype=np.float64).reshape(-1)

    def observe(self, frame: np.ndarray) -> DriftDecision:
        """Process one frame; returns the per-frame decision.

        After drift has been declared the inspector keeps reporting
        ``drift=True`` until :meth:`reset` is called (the pipeline swaps the
        model and resets at that point).
        """
        with self.obs.span("di.observe"):
            return self._observe_traced(frame)

    def _observe_traced(self, frame: np.ndarray) -> DriftDecision:
        with self.obs.span("di.embed"):
            latent = self._embed(frame)
        if self.clock is not None:
            self.clock.charge("knn_nonconformity")
            self.clock.charge("martingale_update")
        a_f = self.measure.score(latent, self._bag)
        p = self._pvalue(a_f)
        self._c_frames.inc()
        self._h_pvalue.observe(p)
        # Two-sided transform: under exchangeability p is uniform, so
        # p' = 2 * min(p, 1 - p) is uniform too; it is small both when the
        # frame is too strange (p near 0) and when it is too conformal
        # (p near 1 -- out-of-distribution inputs routinely collapse near
        # the VAE's latent mean, landing closer to Sigma_T than Sigma_T's
        # own points are to each other).
        p_eff = 2.0 * min(p, 1.0 - p) if self.config.two_sided else p
        state: MartingaleState = self.martingale.update(p_eff)
        drift = state.drift or self.drift_detected
        decision = DriftDecision(frame_index=self._frame_index,
                                 nonconformity=a_f, p_value=p,
                                 martingale=state.value, drift=drift)
        if drift and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self.decisions.append(decision)
        self._frame_index += 1
        return decision

    def observe_batch(self, frames: Sequence[np.ndarray],
                      exact_embed: bool = False) -> List[DriftDecision]:
        """Process a window of frames at once; returns per-frame decisions.

        Vectorizes the whole per-frame loop: nonconformity scores are
        computed by broadcast KNN, conformal p-values by block counting with
        a block draw of tie-breaking uniforms, and the martingale by the
        batch CUSUM/cumsum update.  All three stages are **bit-identical**
        to calling :meth:`observe` once per frame -- the equivalence is
        enforced by property tests -- and both paths consume the RNG streams
        identically, so sequential and batched observation can be freely
        interleaved on one inspector.

        The only caveat is the embedder: by default the window is embedded
        with a single batched ``sample_embed`` call, whose matmuls may
        differ from the per-frame path in low-order mantissa bits on
        blocked BLAS backends (the posterior-noise draws themselves stay
        stream-identical).  Pass ``exact_embed=True`` to embed frame by
        frame and reproduce the sequential path bit-exactly even with an
        embedder; pre-embedded latents (no embedder) are always exact.
        """
        arr = np.asarray(frames, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        n = arr.shape[0]
        if n == 0:
            return []
        with self.obs.span("di.observe_batch"):
            return self._observe_batch_traced(arr, n, exact_embed)

    def _observe_batch_traced(self, arr: np.ndarray, n: int,
                              exact_embed: bool) -> List[DriftDecision]:
        if self.embedder is not None:
            if self.clock is not None:
                self.clock.charge("vae_encode", times=n)
            with self.obs.span("di.embed_batch"):
                if exact_embed:
                    latents = np.stack(
                        [self._embed_block(arr[i:i + 1])[0]
                         for i in range(n)])
                else:
                    latents = self._embed_block(arr)
        else:
            latents = arr.reshape(n, -1)
        if self.clock is not None:
            self.clock.charge("knn_nonconformity", times=n)
            self.clock.charge("martingale_update", times=n)
        scores = self.measure.score_batch(latents, self._bag)
        ps = self._pvalue.batch(scores)
        self._c_frames.inc(n)
        self._h_pvalue.observe_many(ps)
        if self.config.two_sided:
            p_eff = 2.0 * np.minimum(ps, 1.0 - ps)
        else:
            p_eff = ps
        batch = self.martingale.update_batch(p_eff)
        # drift is sticky: once declared (now or previously), every later
        # decision reports drift=True until reset()
        flags = np.logical_or.accumulate(batch.drift)
        if self.drift_detected:
            flags = np.ones(n, dtype=bool)
        score_list, p_list = scores.tolist(), ps.tolist()
        value_list, flag_list = batch.values.tolist(), flags.tolist()
        decisions = []
        for i in range(n):
            drift = flag_list[i]
            decision = DriftDecision(
                frame_index=self._frame_index + i,
                nonconformity=score_list[i], p_value=p_list[i],
                martingale=value_list[i], drift=drift)
            if drift and self._drift_frame is None:
                self._drift_frame = decision.frame_index
            decisions.append(decision)
        self.decisions.extend(decisions)
        self._frame_index += n
        return decisions

    def monitor(self, frames: Iterable[np.ndarray],
                stop_on_drift: bool = True) -> Iterator[DriftDecision]:
        """Generator over per-frame decisions for a frame iterable."""
        for frame in frames:
            decision = self.observe(frame)
            yield decision
            if stop_on_drift and decision.drift:
                return

    def frames_to_detect(self, frames: Iterable[np.ndarray],
                         limit: Optional[int] = None) -> Optional[int]:
        """Number of frames consumed before declaring drift.

        Returns ``None`` if drift was never declared within ``limit`` frames
        (or before the iterable was exhausted).
        """
        for i, frame in enumerate(frames):
            if limit is not None and i >= limit:
                return None
            decision = self.observe(frame)
            if decision.drift:
                return i + 1
        return None

    def state_dict(self) -> dict:
        """JSON-serializable dynamic state for checkpoint / restore.

        Covers everything that evolves during monitoring: frame counter,
        drift flag, martingale internals and both RNG streams (tie-breaking
        uniforms and posterior-sampling).  The reference sample / scores are
        *configuration* -- they are rebuilt from the deployed bundle on
        restore -- and per-frame ``decisions`` are diagnostics, not state,
        so neither is included.
        """
        return {"frame_index": self._frame_index,
                "drift_frame": self._drift_frame,
                "martingale": self.martingale.state_dict(),
                "pvalue_rng": self._pvalue.rng_state(),
                "embed_rng": self._embed_rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore dynamic state captured by :meth:`state_dict` into an
        inspector built with the same configuration and reference."""
        self._frame_index = int(state["frame_index"])
        drift_frame = state["drift_frame"]
        self._drift_frame = None if drift_frame is None else int(drift_frame)
        self.martingale.load_state_dict(state["martingale"])
        self._pvalue.set_rng_state(state["pvalue_rng"])
        self._embed_rng.bit_generator.state = state["embed_rng"]
        self.decisions = []

    def reset(self, reference: Optional[np.ndarray] = None,
              reference_scores: Optional[np.ndarray] = None) -> None:
        """Restart monitoring, optionally against a new ``Sigma_T``.

        Called by the pipeline after a model swap: the new deployed model's
        reference sample becomes the null distribution.
        """
        if reference is not None:
            reference = np.asarray(reference, dtype=np.float64)
            if reference.ndim != 2 or reference.shape[0] < 2:
                raise EmptyReferenceError(
                    f"reference Sigma_T must be (N>=2, D), got {reference.shape}")
            self.reference = reference
            self._bag, self.reference_scores = self._prepare_reference(
                reference, reference_scores)
            # rebuild the RNG streams exactly as __init__ does so an
            # in-place reference swap is indistinguishable from constructing
            # a fresh inspector -- previously the tie-breaking stream
            # restarted one draw ahead of a fresh inspector's and the
            # posterior-sampling stream was left mid-flight, so a swapped
            # inspector and a rebuilt one (e.g. after checkpoint restore,
            # or the pipeline's _deploy) diverged
            rng = ensure_rng(self.config.seed)
            self._pvalue = PValueCalculator(self.reference_scores, seed=rng)
            self._embed_rng = np.random.default_rng(
                rng.integers(0, 2**63 - 1))
        self.martingale = self._build_martingale()
        self._drift_frame = None
        self._frame_index = 0
        self.decisions = []
