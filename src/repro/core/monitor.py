"""Multi-camera fleet monitoring.

The paper's architecture is single-stream; a deployment typically watches a
*fleet* of cameras that share the provisioned model zoo (traffic authority,
campus security, ...).  :class:`FleetMonitor` runs one
:class:`~repro.core.pipeline.DriftAwareAnalytics` per camera over a shared
:class:`~repro.core.selection.registry.ModelRegistry`: drifts are handled
per camera, while a novel distribution trained on *one* camera becomes
immediately available to every other camera (the registry is shared).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.pipeline import (
    DriftAwareAnalytics,
    FrameRecord,
    PipelineConfig,
    PipelineResult,
)
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.core.selection.registry import ModelRegistry
from repro.core.selection.trainer import ModelTrainer
from repro.errors import ConfigurationError
from repro.sim.clock import SimulatedClock


@dataclass
class FleetConfig:
    """Fleet-level knobs.

    ``selector`` picks the selection algorithm built per camera
    (``"msbi"`` or ``"msbo"``); ``selection_window`` and the pipeline knobs
    are shared by every camera.
    """

    selector: str = "msbi"
    selection_window: int = 10
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.selector not in ("msbi", "msbo"):
            raise ConfigurationError(
                f"selector must be 'msbi' or 'msbo', got {self.selector!r}")


class FleetMonitor:
    """Drift-aware processing for a fleet of cameras sharing one registry."""

    def __init__(self, registry: ModelRegistry,
                 annotator: Optional[Callable] = None,
                 trainer: Optional[ModelTrainer] = None,
                 config: Optional[FleetConfig] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        if len(registry) == 0:
            raise ConfigurationError("FleetMonitor needs a non-empty registry")
        self.registry = registry
        self.annotator = annotator
        self.trainer = trainer
        self.config = config or FleetConfig()
        self.clock = clock or SimulatedClock()
        self._pipelines: Dict[str, DriftAwareAnalytics] = {}

    # ------------------------------------------------------------------
    def _build_selector(self):
        if self.config.selector == "msbo":
            return MSBO(self.registry,
                        MSBOConfig(window_size=self.config.selection_window,
                                   seed=self.config.seed),
                        clock=self.clock)
        return MSBI(self.registry,
                    MSBIConfig(window_size=self.config.selection_window,
                               seed=self.config.seed),
                    clock=self.clock)

    def add_camera(self, camera_id: str, initial_model: str) -> None:
        """Register a camera with its initially deployed model."""
        if camera_id in self._pipelines:
            raise ConfigurationError(f"camera {camera_id!r} already added")
        pipeline = DriftAwareAnalytics(
            self.registry, initial_model, self._build_selector(),
            annotator=self.annotator, trainer=self.trainer,
            config=self.config.pipeline, clock=self.clock)
        pipeline.start()
        self._pipelines[camera_id] = pipeline

    @property
    def cameras(self) -> List[str]:
        return list(self._pipelines)

    def _pipeline(self, camera_id: str) -> DriftAwareAnalytics:
        try:
            return self._pipelines[camera_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown camera {camera_id!r}; known: {self.cameras}"
            ) from None

    # ------------------------------------------------------------------
    def step(self, camera_id: str, frame: object) -> List[FrameRecord]:
        """Push one frame from one camera."""
        return self._pipeline(camera_id).step(frame)

    def flush(self, camera_id: Optional[str] = None) -> None:
        """Resolve buffered frames for one camera (or all)."""
        targets = [camera_id] if camera_id is not None else self.cameras
        for name in targets:
            self._pipeline(name).flush()

    def deployed_model(self, camera_id: str) -> str:
        return self._pipeline(camera_id).deployed_model

    def result(self, camera_id: str) -> PipelineResult:
        return self._pipeline(camera_id).result()

    def results(self) -> Dict[str, PipelineResult]:
        """Per-camera aggregated results."""
        return {name: pipeline.result()
                for name, pipeline in self._pipelines.items()}

    def fleet_summary(self) -> Dict[str, object]:
        """Fleet-level rollup: frames, detections, novel trainings, time."""
        results = self.results()
        return {
            "cameras": len(results),
            "frames": sum(len(r.records) for r in results.values()),
            "detections": sum(len(r.detections) for r in results.values()),
            "novel_models": sum(
                sum(1 for d in r.detections if d.novel)
                for r in results.values()),
            "registry_models": self.registry.names(),
            "simulated_ms": self.clock.elapsed_ms,
        }
