"""Exchangeability martingales and the windowed drift test (Section 4).

Two testing machines are provided:

- :class:`MultiplicativeMartingale` -- the classic product martingale of
  Eq. 5 (tracked in log space).  By Ville's inequality (Eq. 4), observing
  ``S_n > 1/r`` rejects exchangeability at significance ``r``.
- :class:`AdditiveMartingale` -- Algorithm 1's machine: a CUSUM-style sum of
  log betting scores with a ``max(0, .)`` reset, tested with the windowed
  Hoeffding-Azuma criterion of Eq. 15:

      | S_l - S_{l-W} | > sqrt( 2 W (2 / r) )

  The window assesses the *rate of change* of the martingale score, so a
  long quiet history cannot mask a sharp post-drift rise.

The paper's threshold uses ``2/r`` where the textbook Hoeffding-Azuma bound
gives ``ln(2/r)``; we default to the paper's form (it matches the worked
example in Section 4.3.1) and expose ``use_log_bound=True`` for the
statistically tight version.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.errors import CheckpointError, ConfigurationError
from repro.core.betting import BettingFunction, LogScore


def hoeffding_threshold(window: int, significance: float, bound: float = 1.0,
                        use_log_bound: bool = False) -> float:
    """Drift threshold for the windowed Hoeffding-Azuma test (Eq. 15).

    ``bound`` is the maximum absolute per-step increment ``|g(p)|``; the
    paper's derivation assumes ``bound = 1``.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if not 0.0 < significance < 1.0:
        raise ConfigurationError(
            f"significance must be in (0, 1), got {significance}")
    if bound <= 0:
        raise ConfigurationError(f"bound must be positive, got {bound}")
    factor = math.log(2.0 / significance) if use_log_bound else 2.0 / significance
    return bound * math.sqrt(2.0 * window * factor)


@dataclass
class MartingaleState:
    """Result of one martingale update."""

    value: float
    drift: bool
    step: int


@dataclass
class MartingaleBatch:
    """Result of one :meth:`update_batch` call: per-step arrays.

    ``values[i]`` / ``drift[i]`` / ``steps[i]`` are exactly the fields the
    ``i``-th sequential :meth:`update` call would have reported.
    """

    values: np.ndarray
    drift: np.ndarray
    steps: np.ndarray

    def __len__(self) -> int:
        return self.values.shape[0]

    def states(self) -> List[MartingaleState]:
        """The batch as per-step :class:`MartingaleState` objects."""
        return [MartingaleState(value=float(v), drift=bool(d), step=int(s))
                for v, d, s in zip(self.values, self.drift, self.steps)]


class MultiplicativeMartingale:
    """Product martingale ``S_n = prod g_i(p_i)`` tracked in log space.

    Declares drift at significance ``r`` when ``S_n > 1/r`` (Eq. 4).
    """

    def __init__(self, betting: BettingFunction,
                 significance: float = 0.05) -> None:
        if betting.kind != "multiplicative":
            raise ConfigurationError(
                "MultiplicativeMartingale needs a multiplicative betting "
                "function")
        if not 0.0 < significance < 1.0:
            raise ConfigurationError(
                f"significance must be in (0, 1), got {significance}")
        self.betting = betting
        self.significance = significance
        self.log_value = 0.0
        self.max_log_value = 0.0
        self.step = 0

    @property
    def value(self) -> float:
        """Current martingale value ``S_n`` (may overflow to inf; use
        :attr:`log_value` for numerics)."""
        # np.exp (not math.exp) so scalar and batch updates report
        # bit-identical values
        return float(np.exp(self.log_value)) if self.log_value < 700 else math.inf

    def update(self, p: float) -> MartingaleState:
        """Consume one p-value; returns the new state."""
        g = self.betting(p)
        if g <= 0.0:
            raise ConfigurationError(
                f"multiplicative betting returned non-positive value {g}")
        self.log_value += float(np.log(g))
        self.max_log_value = max(self.max_log_value, self.log_value)
        self.step += 1
        drift = self.log_value > math.log(1.0 / self.significance)
        return MartingaleState(value=self.value, drift=drift, step=self.step)

    def update_batch(self, ps: np.ndarray) -> MartingaleBatch:
        """Consume a 1-D array of p-values; bit-identical to sequential
        :meth:`update` calls (betting evaluated with the shared batch
        kernel, log-values accumulated with ``cumsum``, which performs the
        same left-to-right additions as the scalar loop)."""
        ps = np.asarray(ps, dtype=np.float64).reshape(-1)
        n = ps.shape[0]
        if n == 0:
            return MartingaleBatch(values=np.empty(0), drift=np.empty(0, bool),
                                   steps=np.empty(0, np.int64))
        g = self.betting.batch(ps)
        if (g <= 0.0).any():
            raise ConfigurationError(
                f"multiplicative betting returned non-positive value "
                f"{float(g[g <= 0.0][0])}")
        log_values = np.cumsum(np.concatenate(([self.log_value], np.log(g))))[1:]
        self.log_value = float(log_values[-1])
        self.max_log_value = max(self.max_log_value, float(log_values.max()))
        steps = self.step + 1 + np.arange(n, dtype=np.int64)
        self.step = int(steps[-1])
        drift = log_values > math.log(1.0 / self.significance)
        with np.errstate(over="ignore"):
            values = np.where(log_values < 700, np.exp(log_values), math.inf)
        return MartingaleBatch(values=values, drift=drift, steps=steps)

    def reset(self) -> None:
        """Restart the martingale at 1 (log 0)."""
        self.log_value = 0.0
        self.max_log_value = 0.0
        self.step = 0

    def state_dict(self) -> dict:
        """JSON-serializable snapshot for checkpoint / restore."""
        state = {"kind": "multiplicative", "log_value": self.log_value,
                 "max_log_value": self.max_log_value, "step": self.step}
        betting_state = getattr(self.betting, "state_dict", None)
        if betting_state is not None:
            state["betting"] = betting_state()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        if state.get("kind") != "multiplicative":
            raise CheckpointError(
                f"cannot load {state.get('kind')!r} state into a "
                f"multiplicative martingale")
        self.log_value = float(state["log_value"])
        self.max_log_value = float(state["max_log_value"])
        self.step = int(state["step"])
        if "betting" in state:
            loader = getattr(self.betting, "load_state_dict", None)
            if loader is None:
                raise CheckpointError(
                    "checkpoint carries betting state but the configured "
                    "betting function is stateless")
            loader(state["betting"])


ScoreFunction = Union[LogScore, BettingFunction, Callable[[float], float]]


class AdditiveMartingale:
    """Algorithm 1's additive martingale with the windowed rate test.

    Each update appends ``max(0, S[-1] + score(p))`` (the CUSUM reset keeps
    the statistic from drifting to minus infinity during long null periods)
    and tests ``|S[t] - S[t - w]| > threshold`` with ``w = min(W, t)``.

    ``score`` defaults to the log of a power betting function
    (:class:`~repro.core.betting.LogScore`); any additive betting function or
    plain callable can be substituted for ablation.
    """

    def __init__(self, score: ScoreFunction, window: int = 3,
                 significance: float = 0.5, cusum_reset: bool = True,
                 bound: float = 1.0, use_log_bound: bool = False,
                 max_history: Optional[int] = None) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.score = score
        self.window = window
        self.significance = significance
        self.cusum_reset = cusum_reset
        self.threshold = hoeffding_threshold(
            window, significance, bound=bound, use_log_bound=use_log_bound)
        # history[0] == S[0] == 0; history[t] is the score after t updates.
        self.history: List[float] = [0.0]
        self.max_history = max_history
        self.step = 0

    @property
    def value(self) -> float:
        return self.history[-1]

    def update(self, p: float) -> MartingaleState:
        """Consume one p-value; returns the new state (Algorithm 1 lines
        10-14)."""
        increment = float(self.score(p))
        new_value = self.history[-1] + increment
        if self.cusum_reset:
            new_value = max(0.0, new_value)
        self.history.append(new_value)
        self.step += 1
        w = min(self.window, self.step)
        delta = abs(self.history[-1] - self.history[-1 - w])
        drift = delta > self.threshold
        if self.max_history is not None and len(self.history) > self.max_history:
            # keep at least window + 1 entries so the rate test stays valid
            keep = max(self.window + 1, self.max_history)
            self.history = self.history[-keep:]
        return MartingaleState(value=new_value, drift=drift, step=self.step)

    def update_batch(self, ps: np.ndarray) -> MartingaleBatch:
        """Consume a 1-D array of p-values; bit-identical to sequential
        :meth:`update` calls.

        The log-score increments are evaluated with the betting function's
        batch kernel; the CUSUM recurrence ``S[t] = max(0, S[t-1] + inc)``
        is computed as a ``cumsum`` restarted at every clamp point --
        ``cumsum`` performs the same left-to-right additions as the scalar
        loop, and between clamps the two are the same float sequence.  The
        windowed Hoeffding-Azuma test is then evaluated for every step at
        once against the extended history.
        """
        ps = np.asarray(ps, dtype=np.float64).reshape(-1)
        n = ps.shape[0]
        if n == 0:
            return MartingaleBatch(values=np.empty(0), drift=np.empty(0, bool),
                                   steps=np.empty(0, np.int64))
        batch_score = getattr(self.score, "batch", None)
        if batch_score is not None:
            increments = np.asarray(batch_score(ps), dtype=np.float64)
        else:
            increments = np.asarray([float(self.score(p)) for p in ps],
                                    dtype=np.float64)
        values = np.empty(n, dtype=np.float64)
        start, last = 0, self.history[-1]
        # every scan is bounded by an adaptive lookahead window: splitting a
        # cumsum at any point and carrying ``last`` forward performs the
        # identical left-to-right additions, so windowing costs nothing in
        # exactness while keeping clamp-dense streams (which would otherwise
        # rescan the whole tail at every restart) linear overall
        lookahead = 32
        while start < n:
            stop = min(n, start + lookahead)
            window = increments[start:stop]
            if self.cusum_reset and last == 0.0:
                # S sticks at exactly 0.0 through a run of non-positive
                # increments (max(0, 0 + inc) == 0.0), so the run needs no
                # arithmetic at all -- without this, null streams (which
                # clamp almost every step) degenerate the cumsum restarts
                # into a per-frame loop
                nonpos = window <= 0.0
                if nonpos[0]:
                    if nonpos.all():
                        values[start:stop] = 0.0
                        start = stop
                        lookahead = min(lookahead * 2, 4096)
                    else:
                        run = int(np.argmin(nonpos))
                        values[start:start + run] = 0.0
                        start += run
                    continue
            segment = np.cumsum(np.concatenate(([last], window)))[1:]
            if self.cusum_reset:
                negative = np.nonzero(segment < 0.0)[0]
                if negative.size:
                    clamp = int(negative[0])
                    values[start:start + clamp] = segment[:clamp]
                    values[start + clamp] = 0.0
                    last = 0.0
                    start += clamp + 1
                    lookahead = 32
                    continue
            values[start:stop] = segment
            last = float(segment[-1])
            start = stop
            lookahead = min(lookahead * 2, 4096)
        # windowed rate test over the extended history, one comparison per
        # step: position i sits at extended index len(history) + i and is
        # compared w_i = min(W, step_i) entries back
        extended = np.concatenate((self.history, values))
        steps = self.step + 1 + np.arange(n, dtype=np.int64)
        positions = len(self.history) + np.arange(n)
        w = np.minimum(self.window, steps)
        delta = np.abs(extended[positions] - extended[positions - w])
        drift = delta > self.threshold
        self.history.extend(values.tolist())  # python floats: JSON-safe
        self.step = int(steps[-1])
        if self.max_history is not None and len(self.history) > self.max_history:
            keep = max(self.window + 1, self.max_history)
            self.history = self.history[-keep:]
        return MartingaleBatch(values=values, drift=drift, steps=steps)

    def rate(self) -> float:
        """Current windowed rate ``|S[t] - S[t-w]|`` (0 before any update)."""
        if self.step == 0:
            return 0.0
        w = min(self.window, self.step, len(self.history) - 1)
        return abs(self.history[-1] - self.history[-1 - w])

    def reset(self) -> None:
        """Restart at ``S[0] = 0`` keeping the configuration."""
        self.history = [0.0]
        self.step = 0

    def _betting(self):
        """The underlying betting function, unwrapping a LogScore."""
        score = self.score
        return getattr(score, "betting", score)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot for checkpoint / restore."""
        state = {"kind": "additive", "history": list(self.history),
                 "step": self.step}
        betting_state = getattr(self._betting(), "state_dict", None)
        if betting_state is not None:
            state["betting"] = betting_state()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        if state.get("kind") != "additive":
            raise CheckpointError(
                f"cannot load {state.get('kind')!r} state into an "
                f"additive martingale")
        history = [float(v) for v in state["history"]]
        if not history:
            raise CheckpointError("additive martingale history is empty")
        self.history = history
        self.step = int(state["step"])
        if "betting" in state:
            loader = getattr(self._betting(), "load_state_dict", None)
            if loader is None:
                raise CheckpointError(
                    "checkpoint carries betting state but the configured "
                    "betting function is stateless")
            loader(state["betting"])
