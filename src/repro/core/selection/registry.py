"""Model registry: the collection of provisioned per-distribution models.

Each known distribution ``i`` carries the full bundle Table 1 describes:
training data ``T_i``, its VAE ``A_{T_i}``, the i.i.d. samples
``Sigma_{T_i}``, the precomputed nonconformity scores ``A_i``, the query
model ``M_i``, and (for MSBO) the deep ensemble ``{M_{i,l}}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import RegistryError


class NovelDistribution(Exception):
    """Raised by a selector when no provisioned model fits the new data.

    Signals the pipeline to invoke ``trainNewModel`` (Section 5.4).  Derives
    from ``Exception`` directly (not :class:`~repro.errors.ReproError`)
    because it is a control-flow signal, not a failure.
    """

    def __init__(self, message: str = "no provisioned model fits the new data",
                 diagnostics: Optional[dict] = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics or {}


@dataclass
class ModelBundle:
    """Everything provisioned for one known distribution.

    Attributes
    ----------
    name:
        Distribution identifier (e.g. ``"night"`` or ``"angle_2"``).
    sigma:
        ``Sigma_{T_i}`` -- i.i.d. latent samples from the VAE, ``(N, D)``.
    reference_scores:
        ``A_i`` -- precomputed nonconformity scores of ``sigma``'s elements.
    vae:
        The distribution's variational autoencoder (``embed``/``sample_latents``).
    model:
        The deployed query model (``predict`` / ``predict_proba``).
    ensemble:
        Deep ensemble of L models for MSBO uncertainty (may be ``None`` when
        only DI / MSBI are used -- MSBI is fully unsupervised).
    training_frames / training_labels:
        Optional retained training data (used by MSBO calibration).
    """

    name: str
    sigma: np.ndarray
    reference_scores: np.ndarray
    vae: Optional[object] = None
    model: Optional[object] = None
    ensemble: Optional[object] = None
    training_frames: Optional[np.ndarray] = None
    training_labels: Optional[np.ndarray] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sigma = np.asarray(self.sigma, dtype=np.float64)
        self.reference_scores = np.asarray(self.reference_scores,
                                           dtype=np.float64)
        if self.sigma.ndim != 2:
            raise RegistryError(
                f"bundle {self.name!r}: sigma must be (N, D), "
                f"got {self.sigma.shape}")
        if self.reference_scores.shape[0] != self.sigma.shape[0]:
            raise RegistryError(
                f"bundle {self.name!r}: reference_scores length "
                f"{self.reference_scores.shape[0]} != sigma size "
                f"{self.sigma.shape[0]}")

    def embed(self, frames: np.ndarray) -> np.ndarray:
        """Embed raw frames with this bundle's VAE (identity without one).

        Uses posterior sampling when available, matching how ``sigma`` was
        generated (see :meth:`repro.nn.vae.VAE.sample_embed`).
        """
        arr = np.asarray(frames, dtype=np.float64)
        if self.vae is None:
            return arr.reshape(arr.shape[0], -1) if arr.ndim > 2 else arr
        sample_embed = getattr(self.vae, "sample_embed", None)
        if sample_embed is not None:
            return np.asarray(sample_embed(arr), dtype=np.float64)
        return np.asarray(self.vae.embed(arr), dtype=np.float64)


class ModelRegistry:
    """Ordered mapping of distribution name to :class:`ModelBundle`."""

    def __init__(self, bundles: Optional[List[ModelBundle]] = None) -> None:
        self._bundles: Dict[str, ModelBundle] = {}
        for bundle in bundles or []:
            self.add(bundle)

    def add(self, bundle: ModelBundle) -> None:
        """Register a bundle; duplicate names are rejected."""
        if bundle.name in self._bundles:
            raise RegistryError(f"duplicate model bundle {bundle.name!r}")
        self._bundles[bundle.name] = bundle

    def replace(self, bundle: ModelBundle) -> None:
        """Register or overwrite a bundle (used by retraining)."""
        self._bundles[bundle.name] = bundle

    def get(self, name: str) -> ModelBundle:
        try:
            return self._bundles[name]
        except KeyError:
            raise RegistryError(
                f"unknown model bundle {name!r}; known: {self.names()}"
            ) from None

    def remove(self, name: str) -> ModelBundle:
        if name not in self._bundles:
            raise RegistryError(f"unknown model bundle {name!r}")
        return self._bundles.pop(name)

    def names(self) -> List[str]:
        return list(self._bundles)

    def __contains__(self, name: str) -> bool:
        return name in self._bundles

    def __len__(self) -> int:
        return len(self._bundles)

    def __iter__(self) -> Iterator[ModelBundle]:
        return iter(self._bundles.values())
