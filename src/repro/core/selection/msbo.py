"""Model Selection Based on Output (paper Section 5.2, Algorithm 3).

MSBO scores every provisioned model's deep ensemble on a small window
``W_T`` of annotated post-drift frames using the Brier score (a proper
scoring rule), and deploys the model with the lowest predictive uncertainty
-- provided it clears a calibrated threshold.  The threshold comes from a
pre-processing step (:class:`MSBOCalibration`): for each model ``k`` we
measure the ensemble's average uncertainty ``pc_avg[k]`` when predicting
samples of the *other* models' training data, and accept model ``k`` after a
drift only when its window Brier score is at most ``pc_avg[k] - sigma[k]``
(one standard deviation below its cross-distribution baseline).  If the best
model fails its threshold the input is novel -> :class:`NovelDistribution`.

MSBO requires labels for the window frames (in the paper, Mask R-CNN
annotations); the pipeline supplies them via its annotator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.selection.registry import ModelBundle, ModelRegistry, NovelDistribution
from repro.core.selection.scoring import brier_score
from repro.errors import ConfigurationError, NotFittedError
from repro.rng import SeedLike, ensure_rng
from repro.sim.clock import SimulatedClock


@dataclass
class MSBOConfig:
    """Parameters of Algorithm 3 (paper defaults from Section 6.2)."""

    window_size: int = 10        # W_T: annotated frames evaluated
    calibration_sample: int = 50  # |S_Ti| per model during calibration
    sigma_margin: float = 1.0    # threshold = pc_avg - margin * sigma
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ConfigurationError(
                f"window_size must be positive: {self.window_size}")
        if self.calibration_sample <= 1:
            raise ConfigurationError(
                f"calibration_sample must be > 1: {self.calibration_sample}")
        if self.sigma_margin < 0:
            raise ConfigurationError(
                f"sigma_margin must be non-negative: {self.sigma_margin}")


@dataclass
class MSBOCalibration:
    """Cross-distribution uncertainty baseline (Section 5.2.2).

    ``pc_avg[k]`` -- average Brier score of model ``k``'s ensemble when
    predicting random samples ``S_Ti`` of every other model's training data.
    ``sigma[k]`` -- the standard deviation of those per-distribution scores.
    """

    pc_avg: Dict[str, float] = field(default_factory=dict)
    sigma: Dict[str, float] = field(default_factory=dict)

    def threshold(self, name: str, margin: float = 1.0) -> float:
        if name not in self.pc_avg:
            raise NotFittedError(f"no calibration entry for model {name!r}")
        return self.pc_avg[name] - margin * self.sigma[name]


@dataclass
class MSBOReport:
    """Diagnostics from one selection."""

    selected: str
    brier: Dict[str, float]
    threshold: float


class MSBO:
    """Model Selection Based on Output."""

    def __init__(self, registry: ModelRegistry,
                 config: Optional[MSBOConfig] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        if len(registry) == 0:
            raise ConfigurationError("MSBO needs a non-empty model registry")
        self.registry = registry
        self.config = config or MSBOConfig()
        self.clock = clock
        self.calibration: Optional[MSBOCalibration] = None
        self.last_report: Optional[MSBOReport] = None
        self._rng = ensure_rng(self.config.seed)

    # ------------------------------------------------------------------
    # calibration (pre-processing; Section 5.2.2)
    # ------------------------------------------------------------------
    def calibrate(self) -> MSBOCalibration:
        """Build the cross-distribution uncertainty baseline.

        Requires every bundle to retain ``training_frames`` /
        ``training_labels`` and an ``ensemble``.
        """
        names = self.registry.names()
        if len(names) < 2:
            raise ConfigurationError(
                "MSBO calibration needs at least two provisioned models")
        samples: Dict[str, tuple] = {}
        for name in names:
            bundle = self.registry.get(name)
            self._require_msbo_assets(bundle)
            frames = bundle.training_frames
            labels = bundle.training_labels
            n = min(self.config.calibration_sample, frames.shape[0])
            idx = self._rng.choice(frames.shape[0], size=n, replace=False)
            samples[name] = (frames[idx], labels[idx])
        calibration = MSBOCalibration()
        for k in names:
            ensemble = self.registry.get(k).ensemble
            scores = []
            for i in names:
                if i == k:
                    continue
                frames_i, labels_i = samples[i]
                probs = ensemble.predict_proba(frames_i)
                scores.append(brier_score(probs, labels_i))
            scores_arr = np.asarray(scores, dtype=np.float64)
            calibration.pc_avg[k] = float(scores_arr.mean())
            calibration.sigma[k] = float(scores_arr.std())
        self.calibration = calibration
        return calibration

    @staticmethod
    def _require_msbo_assets(bundle: ModelBundle) -> None:
        if bundle.ensemble is None:
            raise NotFittedError(
                f"bundle {bundle.name!r} has no ensemble; MSBO requires one")
        if bundle.training_frames is None or bundle.training_labels is None:
            raise NotFittedError(
                f"bundle {bundle.name!r} retains no training data; MSBO "
                "calibration requires it")

    # ------------------------------------------------------------------
    # selection (Algorithm 3)
    # ------------------------------------------------------------------
    def select(self, frames: np.ndarray, labels: np.ndarray) -> str:
        """Select the model for the post-drift stream.

        ``frames`` / ``labels`` form the annotated window ``W_T``.  Returns
        the chosen bundle name or raises :class:`NovelDistribution` when the
        best model's uncertainty exceeds its calibrated threshold.
        """
        if self.calibration is None:
            self.calibrate()
        frames = np.asarray(frames, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if frames.shape[0] == 0:
            raise ConfigurationError("MSBO needs at least one post-drift frame")
        if labels.shape[0] != frames.shape[0]:
            raise ConfigurationError(
                f"labels length {labels.shape[0]} != frames {frames.shape[0]}")
        window = frames[: self.config.window_size]
        window_labels = labels[: self.config.window_size]
        brier: Dict[str, float] = {}
        for name in self.registry.names():
            bundle = self.registry.get(name)
            self._require_msbo_assets(bundle)
            if self.clock is not None:
                self.clock.charge(
                    "ensemble_member_infer",
                    times=bundle.ensemble.size * window.shape[0])
            probs = bundle.ensemble.predict_proba(window)
            brier[name] = brier_score(probs, window_labels)
        best = min(brier, key=brier.get)
        threshold = self.calibration.threshold(best, self.config.sigma_margin)
        self.last_report = MSBOReport(selected=best, brier=brier,
                                      threshold=threshold)
        if brier[best] <= threshold:
            return best
        raise NovelDistribution(
            "MSBO: best model's uncertainty exceeds its calibrated threshold",
            diagnostics={"brier": brier, "best": best, "threshold": threshold})
