"""Proper scoring rules (paper Section 5.2.1).

Both rules are *proper*: they are optimised in expectation exactly when the
predictive distribution equals the true conditional distribution.  MSBO uses
the Brier score because the models are trained by minimising cross-entropy
(== NLL), so scoring with NLL would be biased toward the training objective.

Conventions: ``probs`` is ``(N, K)`` predictive probabilities, ``labels`` is
``(N,)`` integer class ids.  Lower Brier / NLL is better (more certain and
correct); a Brier score of 0 means total, correct certainty.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError

_EPS = 1e-12


def _validate(probs: np.ndarray, labels: np.ndarray) -> tuple:
    p = np.asarray(probs, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64).reshape(-1)
    if p.ndim != 2:
        raise DimensionMismatchError(f"probs must be (N, K), got {p.shape}")
    if y.shape[0] != p.shape[0]:
        raise DimensionMismatchError(
            f"labels length {y.shape[0]} != batch {p.shape[0]}")
    if p.shape[0] == 0:
        raise ConfigurationError("cannot score an empty batch")
    if y.min() < 0 or y.max() >= p.shape[1]:
        raise ConfigurationError(
            f"labels must be in [0, {p.shape[1]}), got "
            f"[{y.min()}, {y.max()}]")
    return p, y


def brier_score(probs: np.ndarray, labels: np.ndarray,
                normalize: bool = True) -> float:
    """Multi-class Brier score, averaged over the batch.

    Per the paper: ``(1/K) * sum_k (delta_{k=y} - p_k)^2`` for each frame
    (``normalize=True``); ``normalize=False`` drops the ``1/K`` factor
    (the classic Brier definition).
    """
    p, y = _validate(probs, labels)
    n, k = p.shape
    onehot = np.zeros_like(p)
    onehot[np.arange(n), y] = 1.0
    per_frame = ((p - onehot) ** 2).sum(axis=1)
    if normalize:
        per_frame = per_frame / k
    return float(per_frame.mean())


def negative_log_likelihood(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean NLL of the true labels under the predictive distribution."""
    p, y = _validate(probs, labels)
    picked = p[np.arange(p.shape[0]), y]
    return float(-np.log(picked + _EPS).mean())


def brier_decomposition(probs: np.ndarray, labels: np.ndarray,
                        bins: int = 10) -> dict:
    """Reliability / resolution / uncertainty decomposition (diagnostic).

    Computed on the predicted-class confidence (one-vs-rest reduction),
    binned into ``bins`` equal-width confidence buckets.  Useful for the
    Figure 5 style analysis of why Brier separates models better than raw
    accuracy.
    """
    if bins <= 0:
        raise ConfigurationError(f"bins must be positive, got {bins}")
    p, y = _validate(probs, labels)
    confidence = p.max(axis=1)
    correct = (p.argmax(axis=1) == y).astype(np.float64)
    base_rate = correct.mean()
    edges = np.linspace(0.0, 1.0, bins + 1)
    reliability = 0.0
    resolution = 0.0
    n = p.shape[0]
    for b in range(bins):
        lo, hi = edges[b], edges[b + 1]
        mask = ((confidence >= lo) & (confidence < hi)) if b < bins - 1 else (
            (confidence >= lo) & (confidence <= hi))
        count = int(mask.sum())
        if count == 0:
            continue
        mean_conf = confidence[mask].mean()
        mean_correct = correct[mask].mean()
        reliability += count / n * (mean_conf - mean_correct) ** 2
        resolution += count / n * (mean_correct - base_rate) ** 2
    uncertainty = base_rate * (1.0 - base_rate)
    return {
        "reliability": float(reliability),
        "resolution": float(resolution),
        "uncertainty": float(uncertainty),
        "brier_top1": float(reliability - resolution + uncertainty),
    }
