"""trainNewModel (paper Section 5.4).

When both selectors flag a novel distribution, the trainer collects a budget
of post-drift frames, annotates them (Mask R-CNN in the paper; an injected
annotator callable here), and trains the full per-distribution bundle: the
VAE for DI / MSBI, the query classifier, and the deep ensemble for MSBO.

The trainer is substrate-agnostic: factories for the VAE, classifier and
ensemble are injected so ``repro.core`` stays decoupled from
``repro.video`` / ``repro.nn`` defaults (sensible defaults are provided).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.nonconformity import KNNDistance, NonconformityMeasure
from repro.core.selection.registry import ModelBundle
from repro.errors import ConfigurationError, StreamExhaustedError
from repro.rng import SeedLike, derive, stable_hash
from repro.sim.clock import SimulatedClock

# An annotator maps a batch of frames to integer labels.
Annotator = Callable[[np.ndarray], np.ndarray]


@dataclass
class TrainerConfig:
    """Budgets for building a new bundle.

    ``frames_to_collect`` is the paper's 5 K frames (3 minutes at 30 fps),
    scaled down by experiment harnesses; ``sigma_size`` the number of i.i.d.
    latent samples drawn for ``Sigma_T``.
    """

    frames_to_collect: int = 5000
    sigma_size: int = 200
    k: int = 5
    ensemble_size: int = 5
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.frames_to_collect <= 0:
            raise ConfigurationError(
                f"frames_to_collect must be positive: {self.frames_to_collect}")
        if self.sigma_size < 2:
            raise ConfigurationError(
                f"sigma_size must be >= 2: {self.sigma_size}")
        if self.ensemble_size < 2:
            raise ConfigurationError(
                f"ensemble_size must be >= 2: {self.ensemble_size}")


class ModelTrainer:
    """Builds :class:`ModelBundle` objects for new distributions.

    Parameters
    ----------
    vae_factory:
        ``(seed) -> VAE-like`` with ``fit`` / ``embed`` / ``sample_latents``.
    classifier_factory:
        ``(seed) -> classifier`` with ``fit`` / ``predict`` / ``predict_proba``.
    ensemble_factory:
        ``(seed) -> ensemble`` with ``fit`` / ``predict_proba`` / ``size``;
        pass ``None`` to skip ensembles (MSBI-only deployments).
    annotator:
        Labels post-drift frames (the Mask R-CNN substitute).
    """

    def __init__(self, vae_factory: Callable[[SeedLike], object],
                 classifier_factory: Callable[[SeedLike], object],
                 annotator: Annotator,
                 ensemble_factory: Optional[Callable[[SeedLike], object]] = None,
                 config: Optional[TrainerConfig] = None,
                 measure: Optional[NonconformityMeasure] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.vae_factory = vae_factory
        self.classifier_factory = classifier_factory
        self.ensemble_factory = ensemble_factory
        self.annotator = annotator
        self.config = config or TrainerConfig()
        self.measure = measure or KNNDistance(k=self.config.k)
        self.clock = clock
        self.trained: List[str] = []

    def collect(self, stream, limit: Optional[int] = None,
                exact: bool = False) -> np.ndarray:
        """Pull the training budget of frames from an iterator of frames.

        By default a stream that ends early yields whatever was gathered;
        with ``exact=True`` an under-supplied budget raises
        :class:`~repro.errors.StreamExhaustedError` so a training run never
        silently proceeds on fewer frames than it was promised.
        """
        budget = limit if limit is not None else self.config.frames_to_collect
        frames = []
        for frame in stream:
            frames.append(np.asarray(frame, dtype=np.float64))
            if len(frames) >= budget:
                break
        if not frames:
            raise ConfigurationError("stream yielded no frames to collect")
        if exact and len(frames) < budget:
            raise StreamExhaustedError(
                f"stream supplied {len(frames)} of the {budget} training "
                f"frames required")
        return np.stack(frames)

    def train_new_model(self, name: str, frames: np.ndarray,
                        labels: Optional[np.ndarray] = None) -> ModelBundle:
        """Build a complete bundle for distribution ``name`` from frames.

        ``labels`` may be supplied when ground truth is already known;
        otherwise the annotator is invoked (charging annotation cost).
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.shape[0] < 2:
            raise ConfigurationError(
                f"need at least 2 frames to train, got {frames.shape[0]}")
        if labels is None:
            if self.clock is not None:
                self.clock.charge("annotate_frame", times=frames.shape[0])
            labels = np.asarray(self.annotator(frames), dtype=np.int64)
        else:
            labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != frames.shape[0]:
            raise ConfigurationError(
                f"annotator returned {labels.shape[0]} labels for "
                f"{frames.shape[0]} frames")

        seed = self.config.seed
        vae = self.vae_factory(derive(seed, stable_hash(name) & 0xFFFF))
        vae.fit(frames)
        sigma = vae.sample_latents(self.config.sigma_size)
        reference_scores = self.measure.reference_scores(sigma)

        classifier = self.classifier_factory(
            derive(seed, (stable_hash(name) + 1) & 0xFFFF))
        classifier.fit(frames, labels)

        ensemble = None
        if self.ensemble_factory is not None:
            ensemble = self.ensemble_factory(
                derive(seed, (stable_hash(name) + 2) & 0xFFFF))
            ensemble.fit(frames, labels)

        bundle = ModelBundle(
            name=name, sigma=sigma, reference_scores=reference_scores,
            vae=vae, model=classifier, ensemble=ensemble,
            training_frames=frames, training_labels=labels,
            metadata={"trained_frames": int(frames.shape[0])})
        self.trained.append(name)
        return bundle
