"""Persisting model bundles and registries to disk.

A production deployment provisions bundles ahead of time (the paper trains
them for hours on GPUs); this module stores everything a bundle carries --
``Sigma_T``, precomputed scores, the VAE's weights and calibration
statistics, the query model, the MSBO ensemble and the retained training
data -- in a directory of ``.npz`` archives plus a JSON manifest, and
rebuilds live objects from it.

Layout::

    <registry_dir>/
      registry.json            # bundle order
      <bundle_name>/
        bundle.json            # manifest: configs, model kind, metadata
        arrays.npz             # sigma, reference_scores, training data
        vae.npz                # VAE weights + fitted statistics
        model.npz              # query-model weights
        ensemble_<l>.npz       # one archive per ensemble member

``SpatialFilter`` models carry a Python predicate that cannot be
serialised; pass it back in via ``load_bundle(..., spatial_predicate=...)``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Callable, List, Optional

import numpy as np

from repro.core.selection.registry import ModelBundle, ModelRegistry
from repro.detectors.classifier_filters import CountClassifier, SpatialFilter
from repro.errors import ConfigurationError
from repro.nn.classifier import ClassifierConfig, SoftmaxClassifier
from repro.nn.ensemble import DeepEnsemble
from repro.nn.serialization import load_state, save_state
from repro.nn.vae import VAE, VAEConfig

_MANIFEST = "bundle.json"
_ARRAYS = "arrays.npz"
_VAE = "vae.npz"
_MODEL = "model.npz"


def _jsonable_config(config) -> dict:
    data = asdict(config)
    data.pop("seed", None)  # generators are not serialisable; irrelevant
    for key, value in list(data.items()):
        if isinstance(value, tuple):
            data[key] = list(value)
    return data


def _vae_config_from(data: dict) -> VAEConfig:
    data = dict(data)
    data["input_shape"] = tuple(data["input_shape"])
    data["conv_channels"] = tuple(data["conv_channels"])
    return VAEConfig(**data)


def _classifier_config_from(data: dict) -> ClassifierConfig:
    data = dict(data)
    data["input_shape"] = tuple(data["input_shape"])
    return ClassifierConfig(**data)


def _model_kind(model) -> str:
    if isinstance(model, CountClassifier):
        return "count"
    if isinstance(model, SpatialFilter):
        return "spatial"
    if isinstance(model, SoftmaxClassifier):
        return "softmax"
    raise ConfigurationError(
        f"cannot persist query model of type {type(model).__name__}")


def _inner_classifier(model) -> SoftmaxClassifier:
    return model if isinstance(model, SoftmaxClassifier) else model.classifier


def save_bundle(directory: str, bundle: ModelBundle) -> None:
    """Persist a bundle into ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    manifest: dict = {"name": bundle.name, "metadata": bundle.metadata}

    arrays = {"sigma": bundle.sigma,
              "reference_scores": bundle.reference_scores}
    if bundle.training_frames is not None:
        arrays["training_frames"] = bundle.training_frames
        arrays["training_labels"] = bundle.training_labels
    save_state(os.path.join(directory, _ARRAYS), arrays)

    if bundle.vae is not None:
        if not isinstance(bundle.vae, VAE):
            raise ConfigurationError(
                f"cannot persist VAE of type {type(bundle.vae).__name__}")
        manifest["vae_config"] = _jsonable_config(bundle.vae.config)
        save_state(os.path.join(directory, _VAE), bundle.vae.state_dict())

    if bundle.model is not None:
        kind = _model_kind(bundle.model)
        inner = _inner_classifier(bundle.model)
        manifest["model_kind"] = kind
        manifest["model_config"] = _jsonable_config(inner.config)
        save_state(os.path.join(directory, _MODEL), inner.state_dict())

    if bundle.ensemble is not None:
        if not isinstance(bundle.ensemble, DeepEnsemble):
            raise ConfigurationError(
                f"cannot persist ensemble of type "
                f"{type(bundle.ensemble).__name__}")
        manifest["ensemble_size"] = bundle.ensemble.size
        manifest["ensemble_config"] = _jsonable_config(
            bundle.ensemble.members[0].config)
        for index, member in enumerate(bundle.ensemble.members):
            save_state(os.path.join(directory, f"ensemble_{index}.npz"),
                       member.state_dict())

    with open(os.path.join(directory, _MANIFEST), "w") as handle:
        json.dump(manifest, handle, indent=2, default=str)


def load_bundle(directory: str,
                spatial_predicate: Optional[Callable] = None) -> ModelBundle:
    """Rebuild a bundle saved by :func:`save_bundle`."""
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise ConfigurationError(f"no bundle manifest at {manifest_path}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)

    arrays = load_state(os.path.join(directory, _ARRAYS))
    vae = None
    if "vae_config" in manifest:
        vae = VAE(_vae_config_from(manifest["vae_config"]))
        vae.load_state_dict(load_state(os.path.join(directory, _VAE)))

    model = None
    if "model_kind" in manifest:
        config = _classifier_config_from(manifest["model_config"])
        kind = manifest["model_kind"]
        if kind == "count":
            model = CountClassifier(config)
            inner = model.classifier
        elif kind == "spatial":
            if spatial_predicate is None:
                raise ConfigurationError(
                    "bundle holds a SpatialFilter: pass spatial_predicate=")
            model = SpatialFilter(spatial_predicate, config=config)
            inner = model.classifier
        else:
            model = SoftmaxClassifier(config)
            inner = model
        inner.load_state_dict(load_state(os.path.join(directory, _MODEL)))

    ensemble = None
    if "ensemble_size" in manifest:
        config = _classifier_config_from(manifest["ensemble_config"])
        ensemble = DeepEnsemble(config, size=manifest["ensemble_size"],
                                seed=0)
        for index, member in enumerate(ensemble.members):
            member.load_state_dict(load_state(
                os.path.join(directory, f"ensemble_{index}.npz")))
        ensemble._fitted = True

    return ModelBundle(
        name=manifest["name"],
        sigma=arrays["sigma"],
        reference_scores=arrays["reference_scores"],
        vae=vae, model=model, ensemble=ensemble,
        training_frames=arrays.get("training_frames"),
        training_labels=arrays.get("training_labels"),
        metadata=manifest.get("metadata", {}))


def save_registry(directory: str, registry: ModelRegistry) -> None:
    """Persist every bundle of a registry under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    names: List[str] = registry.names()
    for name in names:
        save_bundle(os.path.join(directory, name), registry.get(name))
    with open(os.path.join(directory, "registry.json"), "w") as handle:
        json.dump({"bundles": names}, handle, indent=2)


def load_registry(directory: str,
                  spatial_predicate: Optional[Callable] = None
                  ) -> ModelRegistry:
    """Rebuild a registry saved by :func:`save_registry`."""
    index_path = os.path.join(directory, "registry.json")
    if not os.path.exists(index_path):
        raise ConfigurationError(f"no registry index at {index_path}")
    with open(index_path) as handle:
        names = json.load(handle)["bundles"]
    registry = ModelRegistry()
    for name in names:
        registry.add(load_bundle(os.path.join(directory, name),
                                 spatial_predicate=spatial_predicate))
    return registry
