"""Model Selection Based on Input (paper Section 5.1, Algorithm 2).

MSBI compares the post-drift frames with the i.i.d. sample ``Sigma_{T_i}``
of each provisioned model using the Drift Inspector at significance ``r``:

- if DI rejects exchangeability for *every* model, the data come from a
  previously unseen distribution -> :class:`NovelDistribution`;
- if exactly one model survives, deploy it;
- if several survive, escalate the significance level by ``r_step`` and
  repeat the test over the surviving candidates until one remains (or the
  escalation budget is exhausted, in which case ties break by lowest mean
  nonconformity -- the closest surviving reference distribution).

MSBI is fully unsupervised: it needs only each bundle's VAE and ``Sigma_T``,
never labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry, NovelDistribution
from repro.errors import ConfigurationError
from repro.rng import SeedLike
from repro.sim.clock import SimulatedClock


@dataclass
class MSBIConfig:
    """Parameters of Algorithm 2 (paper defaults from Section 6.2)."""

    window_size: int = 10          # W_N: frames evaluated per round
    martingale_window: int = 3     # W
    significance: float = 0.5      # initial r
    r_step: float = 0.1
    max_significance: float = 0.95
    k: int = 5
    betting_epsilon: float = 0.1
    batched_testing: bool = True   # vectorized per-bundle DI testing
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ConfigurationError(
                f"window_size must be positive: {self.window_size}")
        if not 0.0 < self.significance < 1.0:
            raise ConfigurationError(
                f"significance must be in (0, 1): {self.significance}")
        if self.r_step <= 0:
            raise ConfigurationError(f"r_step must be positive: {self.r_step}")


@dataclass
class MSBIReport:
    """Diagnostics from one selection."""

    selected: str
    rounds: int
    frames_examined: int
    drift_flags: Dict[str, bool]


class MSBI:
    """Model Selection Based on Input."""

    def __init__(self, registry: ModelRegistry,
                 config: Optional[MSBIConfig] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        if len(registry) == 0:
            raise ConfigurationError("MSBI needs a non-empty model registry")
        self.registry = registry
        self.config = config or MSBIConfig()
        self.clock = clock
        self.last_report: Optional[MSBIReport] = None

    # ------------------------------------------------------------------
    def _test_bundle(self, bundle: ModelBundle, frames: np.ndarray,
                     significance: float) -> bool:
        """Run DI over ``frames`` against the bundle; True if drift declared."""
        di_config = DriftInspectorConfig(
            window=self.config.martingale_window,
            significance=significance,
            k=self.config.k,
            betting_epsilon=self.config.betting_epsilon,
            seed=self.config.seed)
        inspector = DriftInspector(
            bundle.sigma, config=di_config, embedder=bundle.vae)
        if self.clock is not None:
            self.clock.charge("msbi_model_frame", times=frames.shape[0])
        if self.config.batched_testing:
            # vectorized window test: the whole window is scored in one
            # observe_batch call (exact per-frame embedding keeps it
            # bit-identical to the sequential loop), and the sticky drift
            # flag makes any(...) agree with the loop's early-stop verdict
            decisions = inspector.observe_batch(frames, exact_embed=True)
            return any(d.drift for d in decisions)
        drift = False
        for frame in frames:
            if inspector.observe(frame).drift:
                drift = True
                break
        return drift

    def select(self, frames: np.ndarray,
               candidates: Optional[List[str]] = None) -> str:
        """Select the model to process the post-drift stream.

        ``frames`` is the window ``W_N`` of raw frames collected after the
        drift.  Returns the selected bundle name or raises
        :class:`NovelDistribution` when every model rejects the data.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.shape[0] == 0:
            raise ConfigurationError("MSBI needs at least one post-drift frame")
        window = frames[: self.config.window_size]
        names = candidates if candidates is not None else self.registry.names()
        significance = self.config.significance
        rounds = 0
        frames_examined = 0
        drift_flags: Dict[str, bool] = {}
        while True:
            rounds += 1
            drift_flags = {}
            for name in names:
                bundle = self.registry.get(name)
                drift_flags[name] = self._test_bundle(bundle, window, significance)
                frames_examined += window.shape[0]
            survivors = [n for n, drifted in drift_flags.items() if not drifted]
            if not survivors:
                self.last_report = MSBIReport(
                    selected="", rounds=rounds,
                    frames_examined=frames_examined, drift_flags=drift_flags)
                raise NovelDistribution(
                    "MSBI: every provisioned model rejected the post-drift data",
                    diagnostics={"drift_flags": drift_flags,
                                 "significance": significance})
            if len(survivors) == 1:
                self.last_report = MSBIReport(
                    selected=survivors[0], rounds=rounds,
                    frames_examined=frames_examined, drift_flags=drift_flags)
                return survivors[0]
            next_significance = significance + self.config.r_step
            if next_significance >= self.config.max_significance:
                # escalation budget exhausted: break the tie by picking the
                # surviving reference distribution closest to the new data
                chosen = self._closest(survivors, window)
                self.last_report = MSBIReport(
                    selected=chosen, rounds=rounds,
                    frames_examined=frames_examined, drift_flags=drift_flags)
                return chosen
            significance = next_significance
            names = survivors

    def _closest(self, names: List[str], frames: np.ndarray) -> str:
        """Tie-break: lowest mean nonconformity of the window's frames."""
        best_name = names[0]
        best_score = float("inf")
        for name in names:
            bundle = self.registry.get(name)
            latents = bundle.embed(frames)
            centroid = bundle.sigma.mean(axis=0)
            score = float(np.sqrt(((latents - centroid) ** 2).sum(axis=1)).mean())
            if score < best_score:
                best_score = score
                best_name = name
        return best_name
