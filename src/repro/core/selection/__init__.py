"""Model selection after drift (paper Section 5).

- :mod:`repro.core.selection.registry` -- per-distribution model bundles.
- :mod:`repro.core.selection.scoring` -- proper scoring rules (Brier, NLL).
- :mod:`repro.core.selection.msbi` -- Model Selection Based on Input.
- :mod:`repro.core.selection.msbo` -- Model Selection Based on Output.
- :mod:`repro.core.selection.trainer` -- trainNewModel (Section 5.4).
- :mod:`repro.core.selection.persistence` -- saving / loading bundles.
"""

from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.persistence import (
    load_bundle,
    load_registry,
    save_bundle,
    save_registry,
)
from repro.core.selection.msbo import MSBO, MSBOCalibration, MSBOConfig
from repro.core.selection.registry import (
    ModelBundle,
    ModelRegistry,
    NovelDistribution,
)
from repro.core.selection.scoring import brier_score, negative_log_likelihood
from repro.core.selection.trainer import ModelTrainer, TrainerConfig

__all__ = [
    "MSBI",
    "MSBIConfig",
    "MSBO",
    "MSBOConfig",
    "MSBOCalibration",
    "ModelBundle",
    "ModelRegistry",
    "NovelDistribution",
    "ModelTrainer",
    "TrainerConfig",
    "brier_score",
    "negative_log_likelihood",
    "save_bundle",
    "load_bundle",
    "save_registry",
    "load_registry",
]
