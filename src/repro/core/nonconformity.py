"""Nonconformity measures (paper Section 4).

A nonconformity measure maps ``(f, S)`` to a real score: the larger the
score, the stranger frame ``f`` is relative to the reference sample ``S``.
The paper adopts the average Euclidean distance of ``f`` to its ``K``
nearest neighbours in ``Sigma_T`` (:class:`KNNDistance`); alternatives are
provided for ablation.

Every measure exposes:

- ``score(point, reference)`` -- the score of one new point against a
  reference set.
- ``reference_scores(reference)`` -- the leave-one-out precomputed ``A_i``
  scores of the reference points themselves (Algorithm 1's ``A_i`` input).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, EmptyReferenceError


def _check_reference(reference: np.ndarray) -> np.ndarray:
    ref = np.asarray(reference, dtype=np.float64)
    if ref.ndim != 2:
        raise DimensionMismatchError(
            f"reference must be (N, D), got shape {ref.shape}")
    if ref.shape[0] == 0:
        raise EmptyReferenceError("reference set Sigma_T is empty")
    return ref


def _check_point(point: np.ndarray, dim: int) -> np.ndarray:
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    if p.shape[0] != dim:
        raise DimensionMismatchError(
            f"point has dim {p.shape[0]}, reference has dim {dim}")
    return p


class NonconformityMeasure:
    """Base class: ``score`` one point, or precompute ``reference_scores``."""

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        raise NotImplementedError

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        """Leave-one-out scores of each reference point vs the rest."""
        ref = _check_reference(reference)
        n = ref.shape[0]
        if n < 2:
            raise EmptyReferenceError(
                "need at least 2 reference points for leave-one-out scores")
        scores = np.empty(n)
        for i in range(n):
            rest = np.delete(ref, i, axis=0)
            scores[i] = self.score(ref[i], rest)
        return scores


class KNNDistance(NonconformityMeasure):
    """Average Euclidean distance to the ``K`` nearest reference points.

    The paper's default measure (``K = 5`` in the evaluation).  If the
    reference has fewer than ``K`` points, all of them are used.
    """

    def __init__(self, k: int = 5) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.k = k

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        ref = _check_reference(reference)
        p = _check_point(point, ref.shape[1])
        dists = np.sqrt(((ref - p) ** 2).sum(axis=1))
        k = min(self.k, dists.shape[0])
        nearest = np.partition(dists, k - 1)[:k]
        return float(nearest.mean())

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        """Vectorised leave-one-out KNN scores over the reference set."""
        ref = _check_reference(reference)
        n = ref.shape[0]
        if n < 2:
            raise EmptyReferenceError(
                "need at least 2 reference points for leave-one-out scores")
        sq = (ref ** 2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (ref @ ref.T)
        np.fill_diagonal(d2, np.inf)
        d = np.sqrt(np.maximum(d2, 0.0))
        k = min(self.k, n - 1)
        nearest = np.partition(d, k - 1, axis=1)[:, :k]
        return nearest.mean(axis=1)


class MeanDistance(NonconformityMeasure):
    """Average Euclidean distance to *all* reference points (Section 4's
    introductory example measure)."""

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        ref = _check_reference(reference)
        p = _check_point(point, ref.shape[1])
        return float(np.sqrt(((ref - p) ** 2).sum(axis=1)).mean())

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        ref = _check_reference(reference)
        n = ref.shape[0]
        if n < 2:
            raise EmptyReferenceError(
                "need at least 2 reference points for leave-one-out scores")
        sq = (ref ** 2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (ref @ ref.T)
        np.fill_diagonal(d2, 0.0)
        d = np.sqrt(np.maximum(d2, 0.0))
        return d.sum(axis=1) / (n - 1)


class MahalanobisDistance(NonconformityMeasure):
    """Mahalanobis distance to the reference mean (covariance regularised).

    A parametric alternative for ablation: cheap (O(D^2) per point after a
    one-off fit) but assumes an elliptical reference distribution.
    """

    def __init__(self, regularization: float = 1e-6) -> None:
        if regularization <= 0:
            raise ConfigurationError(
                f"regularization must be positive, got {regularization}")
        self.regularization = regularization
        self._cached_ref_id: int | None = None
        self._mean: np.ndarray | None = None
        self._inv_cov: np.ndarray | None = None

    def _fit(self, ref: np.ndarray) -> None:
        self._mean = ref.mean(axis=0)
        cov = np.cov(ref, rowvar=False)
        cov = np.atleast_2d(cov) + self.regularization * np.eye(ref.shape[1])
        self._inv_cov = np.linalg.inv(cov)
        self._cached_ref_id = id(ref)

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        ref = _check_reference(reference)
        if ref.shape[0] < 2:
            raise EmptyReferenceError(
                "Mahalanobis needs at least 2 reference points")
        p = _check_point(point, ref.shape[1])
        if self._cached_ref_id != id(reference) or self._mean is None:
            self._fit(ref)
        diff = p - self._mean
        return float(np.sqrt(max(diff @ self._inv_cov @ diff, 0.0)))

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        ref = _check_reference(reference)
        if ref.shape[0] < 2:
            raise EmptyReferenceError(
                "Mahalanobis needs at least 2 reference points")
        self._fit(ref)
        diff = ref - self._mean
        d2 = np.einsum("nd,de,ne->n", diff, self._inv_cov, diff)
        return np.sqrt(np.maximum(d2, 0.0))
