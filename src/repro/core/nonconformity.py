"""Nonconformity measures (paper Section 4).

A nonconformity measure maps ``(f, S)`` to a real score: the larger the
score, the stranger frame ``f`` is relative to the reference sample ``S``.
The paper adopts the average Euclidean distance of ``f`` to its ``K``
nearest neighbours in ``Sigma_T`` (:class:`KNNDistance`); alternatives are
provided for ablation.

Every measure exposes:

- ``score(point, reference)`` -- the score of one new point against a
  reference set.
- ``reference_scores(reference)`` -- the leave-one-out precomputed ``A_i``
  scores of the reference points themselves (Algorithm 1's ``A_i`` input).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, EmptyReferenceError


def _check_reference(reference: np.ndarray) -> np.ndarray:
    ref = np.asarray(reference, dtype=np.float64)
    if ref.ndim != 2:
        raise DimensionMismatchError(
            f"reference must be (N, D), got shape {ref.shape}")
    if ref.shape[0] == 0:
        raise EmptyReferenceError("reference set Sigma_T is empty")
    return ref


def _check_point(point: np.ndarray, dim: int) -> np.ndarray:
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    if p.shape[0] != dim:
        raise DimensionMismatchError(
            f"point has dim {p.shape[0]}, reference has dim {dim}")
    return p


def _check_points(points: np.ndarray, dim: int) -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[None, :]
    if pts.ndim != 2 or pts.shape[1] != dim:
        raise DimensionMismatchError(
            f"points must be (B, {dim}), got shape {pts.shape}")
    return pts


class NonconformityMeasure:
    """Base class: ``score`` one point, or precompute ``reference_scores``."""

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        raise NotImplementedError

    def score_batch(self, points: np.ndarray,
                    reference: np.ndarray) -> np.ndarray:
        """Scores for a ``(B, D)`` stack of points against ``reference``.

        The default walks the scalar path row by row (always bit-identical);
        subclasses override it with broadcast evaluation where the
        vectorized arithmetic provably matches the scalar path.
        """
        ref = _check_reference(reference)
        pts = _check_points(points, ref.shape[1])
        return np.asarray([self.score(p, ref) for p in pts],
                          dtype=np.float64)

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        """Leave-one-out scores of each reference point vs the rest."""
        ref = _check_reference(reference)
        n = ref.shape[0]
        if n < 2:
            raise EmptyReferenceError(
                "need at least 2 reference points for leave-one-out scores")
        scores = np.empty(n)
        for i in range(n):
            rest = np.delete(ref, i, axis=0)
            scores[i] = self.score(ref[i], rest)
        return scores


class KNNDistance(NonconformityMeasure):
    """Average Euclidean distance to the ``K`` nearest reference points.

    The paper's default measure (``K = 5`` in the evaluation).  If the
    reference has fewer than ``K`` points, all of them are used.
    """

    def __init__(self, k: int = 5) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.k = k

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        ref = _check_reference(reference)
        p = _check_point(point, ref.shape[1])
        dists = np.sqrt(((ref - p) ** 2).sum(axis=1))
        k = min(self.k, dists.shape[0])
        nearest = np.partition(dists, k - 1)[:k]
        return float(nearest.mean())

    # bound the (chunk, N, D) broadcast buffer to ~64 MB of float64
    _CHUNK_BYTES = 64 * 1024 * 1024

    def score_batch(self, points: np.ndarray,
                    reference: np.ndarray) -> np.ndarray:
        """Vectorized KNN scores for a ``(B, D)`` stack of points.

        Bit-identical to the scalar :meth:`score` per row: the broadcast
        difference/square/row-sum, per-row partition and k-element mean all
        apply the same per-row kernels the scalar path uses (no matmul
        tricks, whose blocked accumulation would perturb low-order bits).
        Large batches are chunked to bound the broadcast buffer.
        """
        ref = _check_reference(reference)
        pts = _check_points(points, ref.shape[1])
        n, d = ref.shape
        k = min(self.k, n)
        chunk = max(1, self._CHUNK_BYTES // max(1, n * d * 8))
        out = np.empty(pts.shape[0], dtype=np.float64)
        for start in range(0, pts.shape[0], chunk):
            block = pts[start:start + chunk]
            dists = np.sqrt(
                ((ref[None, :, :] - block[:, None, :]) ** 2).sum(axis=2))
            nearest = np.partition(dists, k - 1, axis=1)[:, :k]
            out[start:start + chunk] = nearest.mean(axis=1)
        return out

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        """Vectorised leave-one-out KNN scores over the reference set."""
        ref = _check_reference(reference)
        n = ref.shape[0]
        if n < 2:
            raise EmptyReferenceError(
                "need at least 2 reference points for leave-one-out scores")
        sq = (ref ** 2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (ref @ ref.T)
        np.fill_diagonal(d2, np.inf)
        d = np.sqrt(np.maximum(d2, 0.0))
        k = min(self.k, n - 1)
        nearest = np.partition(d, k - 1, axis=1)[:, :k]
        return nearest.mean(axis=1)


class MeanDistance(NonconformityMeasure):
    """Average Euclidean distance to *all* reference points (Section 4's
    introductory example measure)."""

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        ref = _check_reference(reference)
        p = _check_point(point, ref.shape[1])
        return float(np.sqrt(((ref - p) ** 2).sum(axis=1)).mean())

    def score_batch(self, points: np.ndarray,
                    reference: np.ndarray) -> np.ndarray:
        """Broadcast mean-distance scores, bit-identical per row."""
        ref = _check_reference(reference)
        pts = _check_points(points, ref.shape[1])
        dists = np.sqrt(((ref[None, :, :] - pts[:, None, :]) ** 2).sum(axis=2))
        return dists.mean(axis=1)

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        ref = _check_reference(reference)
        n = ref.shape[0]
        if n < 2:
            raise EmptyReferenceError(
                "need at least 2 reference points for leave-one-out scores")
        sq = (ref ** 2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (ref @ ref.T)
        np.fill_diagonal(d2, 0.0)
        d = np.sqrt(np.maximum(d2, 0.0))
        return d.sum(axis=1) / (n - 1)


class MahalanobisDistance(NonconformityMeasure):
    """Mahalanobis distance to the reference mean (covariance regularised).

    A parametric alternative for ablation: cheap (O(D^2) per point after a
    one-off fit) but assumes an elliptical reference distribution.
    """

    def __init__(self, regularization: float = 1e-6) -> None:
        if regularization <= 0:
            raise ConfigurationError(
                f"regularization must be positive, got {regularization}")
        self.regularization = regularization
        self._cached_ref_id: int | None = None
        self._mean: np.ndarray | None = None
        self._inv_cov: np.ndarray | None = None

    def _fit(self, ref: np.ndarray) -> None:
        self._mean = ref.mean(axis=0)
        cov = np.cov(ref, rowvar=False)
        cov = np.atleast_2d(cov) + self.regularization * np.eye(ref.shape[1])
        self._inv_cov = np.linalg.inv(cov)
        self._cached_ref_id = id(ref)

    def score(self, point: np.ndarray, reference: np.ndarray) -> float:
        ref = _check_reference(reference)
        if ref.shape[0] < 2:
            raise EmptyReferenceError(
                "Mahalanobis needs at least 2 reference points")
        p = _check_point(point, ref.shape[1])
        if self._cached_ref_id != id(reference) or self._mean is None:
            self._fit(ref)
        diff = p - self._mean
        return float(np.sqrt(max(diff @ self._inv_cov @ diff, 0.0)))

    def reference_scores(self, reference: np.ndarray) -> np.ndarray:
        ref = _check_reference(reference)
        if ref.shape[0] < 2:
            raise EmptyReferenceError(
                "Mahalanobis needs at least 2 reference points")
        self._fit(ref)
        diff = ref - self._mean
        d2 = np.einsum("nd,de,ne->n", diff, self._inv_cov, diff)
        return np.sqrt(np.maximum(d2, 0.0))
