"""Layers with hand-written forward/backward passes.

Conventions:

- Batch-first arrays: ``(N, D)`` for dense layers, ``(N, C, H, W)`` for
  convolutional layers.
- ``forward`` caches whatever the matching ``backward`` needs; calling
  ``backward`` before ``forward`` raises :class:`~repro.errors.NotFittedError`.
- Parameters and their gradients are exposed as dictionaries keyed by short
  names (``"W"``, ``"b"``) so optimizers and serialization can treat all
  layers uniformly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, NotFittedError
from repro.nn import initializers
from repro.rng import SeedLike, ensure_rng


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameters (empty for stateless layers)."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients matching :meth:`params` keys, filled in by backward."""
        return {}

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 seed: SeedLike = None, init: str = "he") -> None:
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Dense dims must be positive, got ({in_features}, {out_features})")
        rng = ensure_rng(seed)
        if init == "he":
            self.W = initializers.he_normal((in_features, out_features),
                                            fan_in=in_features, rng=rng)
        elif init == "glorot":
            self.W = initializers.glorot_uniform(
                (in_features, out_features), fan_in=in_features,
                fan_out=out_features, rng=rng)
        else:
            raise ConfigurationError(f"unknown init {init!r}")
        self.b = initializers.zeros((out_features,))
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.W.shape[0]

    @property
    def out_features(self) -> int:
        return self.W.shape[1]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2:
            raise DimensionMismatchError(
                f"Dense expects (N, D) input, got shape {x.shape}")
        if x.shape[1] != self.in_features:
            raise DimensionMismatchError(
                f"Dense built for {self.in_features} features, got {x.shape[1]}")
        if training:
            self._x = x
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise NotFittedError("Dense.backward called before forward")
        self.dW = self._x.T @ grad_out
        self.db = grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def params(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"W": self.dW, "b": self.db}


def _im2col_indices(h: int, w: int, kh: int, kw: int, stride: int,
                    pad: int) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Row/col gather indices for im2col on an ``(H, W)`` plane."""
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    i0 = np.repeat(np.arange(kh), kw)
    j0 = np.tile(np.arange(kw), kh)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    return rows, cols, out_h, out_w


class Conv2d(Layer):
    """2-D convolution implemented with im2col.

    Input ``(N, C_in, H, W)`` -> output ``(N, C_out, H', W')``.  Supports
    square kernels, symmetric zero padding and uniform stride, which covers
    the paper's VAE encoder/decoder and small classifiers.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 seed: SeedLike = None) -> None:
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ConfigurationError("Conv2d dims/stride must be positive")
        if padding < 0:
            raise ConfigurationError("Conv2d padding must be non-negative")
        rng = ensure_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        self.W = initializers.he_normal(
            (out_channels, in_channels, kernel_size, kernel_size),
            fan_in=fan_in, rng=rng)
        self.b = initializers.zeros((out_channels,))
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self._cache: tuple | None = None

    @property
    def in_channels(self) -> int:
        return self.W.shape[1]

    @property
    def out_channels(self) -> int:
        return self.W.shape[0]

    def _im2col(self, x: np.ndarray) -> Tuple[np.ndarray, int, int]:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        if p > 0:
            x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        rows, cols, out_h, out_w = _im2col_indices(h, w, k, k, s, p)
        # (N, C, k*k, out_h*out_w)
        patches = x[:, :, rows, cols]
        # (C*k*k, N*out_h*out_w)
        col = patches.transpose(1, 2, 0, 3).reshape(c * k * k, n * out_h * out_w)
        return col, out_h, out_w

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise DimensionMismatchError(
                f"Conv2d expects (N, C, H, W) input, got shape {x.shape}")
        if x.shape[1] != self.in_channels:
            raise DimensionMismatchError(
                f"Conv2d built for {self.in_channels} channels, got {x.shape[1]}")
        n = x.shape[0]
        col, out_h, out_w = self._im2col(x)
        w_row = self.W.reshape(self.out_channels, -1)
        out = w_row @ col + self.b[:, None]
        out = out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)
        if training:
            self._cache = (x.shape, col)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise NotFittedError("Conv2d.backward called before forward")
        x_shape, col = self._cache
        n, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h, out_w = grad_out.shape[2], grad_out.shape[3]
        # (C_out, N*out_h*out_w)
        grad_row = grad_out.transpose(1, 0, 2, 3).reshape(self.out_channels, -1)
        self.dW = (grad_row @ col.T).reshape(self.W.shape)
        self.db = grad_row.sum(axis=1)
        w_row = self.W.reshape(self.out_channels, -1)
        # (C*k*k, N*out_h*out_w) -> scatter back to padded input
        dcol = w_row.T @ grad_row
        dcol = dcol.reshape(c, k * k, n, out_h * out_w).transpose(2, 0, 1, 3)
        dx_padded = np.zeros((n, c, h + 2 * p, w + 2 * p), dtype=grad_out.dtype)
        rows, cols, _, _ = _im2col_indices(h, w, k, k, s, p)
        np.add.at(dx_padded, (slice(None), slice(None), rows, cols), dcol)
        if p > 0:
            return dx_padded[:, :, p:-p, p:-p]
        return dx_padded

    def params(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"W": self.dW, "b": self.db}


class Flatten(Layer):
    """Reshape ``(N, ...)`` to ``(N, D)``."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise NotFittedError("Flatten.backward called before forward")
        return grad_out.reshape(self._shape)


class Reshape(Layer):
    """Reshape ``(N, D)`` to ``(N, *target)``."""

    def __init__(self, target: Tuple[int, ...]) -> None:
        if any(d <= 0 for d in target):
            raise ConfigurationError(f"Reshape target must be positive, got {target}")
        self.target = tuple(target)
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape((x.shape[0],) + self.target)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise NotFittedError("Reshape.backward called before forward")
        return grad_out.reshape(self._shape)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise NotFittedError("ReLU.backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ConfigurationError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise NotFittedError("LeakyReLU.backward called before forward")
        return np.where(self._mask, grad_out, self.alpha * grad_out)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise NotFittedError("Sigmoid.backward called before forward")
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise NotFittedError("Tanh.backward called before forward")
        return grad_out * (1.0 - self._out ** 2)


class Upsample2x(Layer):
    """Nearest-neighbour 2x spatial upsampling for ``(N, C, H, W)`` input.

    Used by the VAE decoder to grow feature maps between same-padding
    convolutions (a cheap stand-in for transposed convolutions).
    """

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise DimensionMismatchError(
                f"Upsample2x expects (N, C, H, W), got shape {x.shape}")
        return x.repeat(2, axis=2).repeat(2, axis=3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = grad_out.shape
        if h % 2 or w % 2:
            raise DimensionMismatchError(
                f"Upsample2x.backward needs even spatial dims, got {grad_out.shape}")
        return grad_out.reshape(n, c, h // 2, 2, w // 2, 2).sum(axis=(3, 5))
