"""Weight initializers for the numpy NN substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def glorot_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to sigmoid/tanh nets."""
    if fan_in <= 0 or fan_out <= 0:
        raise ConfigurationError(
            f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: Tuple[int, ...], fan_in: int,
              rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU nets."""
    if fan_in <= 0:
        raise ConfigurationError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float64)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
