"""A from-scratch numpy deep-learning substrate.

The paper trains its VAE, VGG-19 count classifiers and deep ensembles with
PyTorch on GPUs.  This environment has neither, so the substrate implements
the required building blocks directly on numpy: dense and convolutional
layers with hand-written backward passes, the standard losses (binary
cross-entropy, softmax cross-entropy, Gaussian KL), SGD / Adam optimizers,
and the model classes built on top (``VAE``, ``SoftmaxClassifier``,
``DeepEnsemble``).

Everything operates on float32/float64 numpy arrays with batch-first layout
(``(N, C, H, W)`` for images, ``(N, D)`` for vectors).
"""

from repro.nn.classifier import SoftmaxClassifier, TrainingHistory
from repro.nn.ensemble import DeepEnsemble
from repro.nn.layers import (
    Conv2d,
    Dense,
    Flatten,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    Upsample2x,
)
from repro.nn.losses import (
    binary_cross_entropy,
    gaussian_kl,
    mse,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.vae import VAE, VAEConfig

__all__ = [
    "Conv2d",
    "Dense",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Upsample2x",
    "Sequential",
    "SGD",
    "Adam",
    "binary_cross_entropy",
    "softmax",
    "softmax_cross_entropy",
    "gaussian_kl",
    "mse",
    "VAE",
    "VAEConfig",
    "SoftmaxClassifier",
    "TrainingHistory",
    "DeepEnsemble",
]
