"""Loss functions returning ``(scalar_loss, gradient_wrt_input)``.

All losses average over the batch dimension, so gradients already include the
``1/N`` factor and can be fed straight into ``Sequential.backward``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DimensionMismatchError

_EPS = 1e-12


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax for ``(N, K)`` logits."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray,
                          labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy (== NLL, the paper's proper scoring rule).

    ``labels`` may be integer class ids ``(N,)`` or one-hot ``(N, K)``.
    Returns the mean loss and the gradient with respect to the logits.
    """
    probs = softmax(logits)
    n, k = probs.shape
    if labels.ndim == 1:
        if labels.shape[0] != n:
            raise DimensionMismatchError(
                f"labels length {labels.shape[0]} != batch {n}")
        onehot = np.zeros_like(probs)
        onehot[np.arange(n), labels.astype(int)] = 1.0
    else:
        if labels.shape != probs.shape:
            raise DimensionMismatchError(
                f"one-hot labels shape {labels.shape} != logits {probs.shape}")
        onehot = labels
    loss = float(-(onehot * np.log(probs + _EPS)).sum() / n)
    grad = (probs - onehot) / n
    return loss, grad


def binary_cross_entropy(pred: np.ndarray,
                         target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Pixel-wise BCE used by the VAE reconstruction term.

    ``pred`` must be in ``(0, 1)`` (sigmoid output); ``target`` in ``[0, 1]``.
    Loss is summed over features and averaged over the batch, matching the
    usual VAE convention so the KL term is on the same scale.
    """
    if pred.shape != target.shape:
        raise DimensionMismatchError(
            f"pred shape {pred.shape} != target shape {target.shape}")
    n = pred.shape[0]
    p = np.clip(pred, _EPS, 1.0 - _EPS)
    loss = float(-(target * np.log(p) + (1 - target) * np.log(1 - p)).sum() / n)
    grad = (-(target / p) + (1 - target) / (1 - p)) / n
    return loss, grad


def mse(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error, summed over features, averaged over batch."""
    if pred.shape != target.shape:
        raise DimensionMismatchError(
            f"pred shape {pred.shape} != target shape {target.shape}")
    n = pred.shape[0]
    diff = pred - target
    loss = float((diff ** 2).sum() / n)
    grad = 2.0 * diff / n
    return loss, grad


def gaussian_kl(mean: np.ndarray,
                logvar: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
    """KL( N(mean, exp(logvar)) || N(0, I) ), averaged over batch.

    Returns ``(loss, dmean, dlogvar)``.
    """
    if mean.shape != logvar.shape:
        raise DimensionMismatchError(
            f"mean shape {mean.shape} != logvar shape {logvar.shape}")
    n = mean.shape[0]
    var = np.exp(logvar)
    loss = float(0.5 * (var + mean ** 2 - 1.0 - logvar).sum() / n)
    dmean = mean / n
    dlogvar = 0.5 * (var - 1.0) / n
    return loss, dmean, dlogvar
