"""Softmax image classifiers (VGG-19 / OD-CLF substitutes).

The paper trains VGG-19 count classifiers and OD-CLF spatial filters per
distribution.  On CPU we use small MLP / conv softmax classifiers with the
same role and the same training loss (softmax cross-entropy == negative
log-likelihood, a proper scoring rule as required by MSBO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.rng import SeedLike, ensure_rng


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy from :meth:`SoftmaxClassifier.fit`."""

    loss: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)


@dataclass
class ClassifierConfig:
    """Configuration for :class:`SoftmaxClassifier`."""

    input_shape: Tuple[int, int, int] = (1, 32, 32)
    num_classes: int = 10
    architecture: str = "mlp"
    hidden: int = 64
    lr: float = 1e-3
    batch_size: int = 16
    epochs: int = 10
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ConfigurationError(
                f"num_classes must be >= 2, got {self.num_classes}")
        if self.architecture not in ("mlp", "conv"):
            raise ConfigurationError(
                f"architecture must be 'mlp' or 'conv', got {self.architecture!r}")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")


class SoftmaxClassifier:
    """K-way softmax classifier with fit / predict_proba / predict."""

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config or ClassifierConfig()
        self._rng = ensure_rng(self.config.seed)
        self._build()
        self._fitted = False
        self._input_mean = 0.0
        self.history = TrainingHistory()

    @property
    def input_dim(self) -> int:
        c, h, w = self.config.input_shape
        return c * h * w

    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    def _build(self) -> None:
        cfg = self.config
        seeds = self._rng.integers(0, 2**31 - 1, size=4)
        if cfg.architecture == "mlp":
            self.net = Sequential([
                Dense(self.input_dim, cfg.hidden, seed=int(seeds[0])), ReLU(),
                Dense(cfg.hidden, cfg.hidden, seed=int(seeds[1])), ReLU(),
                Dense(cfg.hidden, cfg.num_classes, seed=int(seeds[2])),
            ])
        else:
            c, h, w = cfg.input_shape
            if h % 4 or w % 4:
                raise ConfigurationError(
                    f"conv classifier needs H, W divisible by 4, got {(h, w)}")
            self.net = Sequential([
                Conv2d(c, 8, 3, stride=2, padding=1, seed=int(seeds[0])), ReLU(),
                Conv2d(8, 16, 3, stride=2, padding=1, seed=int(seeds[1])), ReLU(),
                Flatten(),
                Dense(16 * (h // 4) * (w // 4), cfg.hidden, seed=int(seeds[2])),
                ReLU(),
                Dense(cfg.hidden, cfg.num_classes, seed=int(seeds[3])),
            ])

    def _as_input(self, frames: np.ndarray) -> np.ndarray:
        x = np.asarray(frames, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if self.config.architecture == "mlp":
            if x.ndim > 2:
                x = x.reshape(x.shape[0], -1)
            if x.shape[1] != self.input_dim:
                raise ConfigurationError(
                    f"classifier built for {self.input_dim} features, "
                    f"got {x.shape[1]}")
            return x
        c, h, w = self.config.input_shape
        if x.ndim == 2:
            x = x.reshape(x.shape[0], c, h, w)
        elif x.ndim == 3:
            x = x[:, None, :, :]
        return x

    def fit(self, frames: np.ndarray, labels: np.ndarray,
            epochs: Optional[int] = None) -> TrainingHistory:
        """Train with softmax cross-entropy over randomized shuffles.

        Per the paper's MSBO setup, ensembles train each member on a
        randomized shuffle of the *entire* training set rather than bagging.
        """
        x_all = self._as_input(frames)
        y_all = np.asarray(labels, dtype=np.int64)
        if y_all.ndim != 1 or y_all.shape[0] != x_all.shape[0]:
            raise ConfigurationError(
                f"labels shape {y_all.shape} incompatible with "
                f"{x_all.shape[0]} frames")
        if y_all.size and (y_all.min() < 0 or y_all.max() >= self.num_classes):
            raise ConfigurationError(
                f"labels must be in [0, {self.num_classes}), "
                f"got range [{y_all.min()}, {y_all.max()}]")
        cfg = self.config
        # centre inputs on the training mean: raw [0, 1] pixels carry a
        # large DC component that slows MLP optimisation considerably
        self._input_mean = float(x_all.mean())
        x_all = x_all - self._input_mean
        optimizer = Adam(lr=cfg.lr)
        n = x_all.shape[0]
        n_epochs = cfg.epochs if epochs is None else epochs
        for _ in range(n_epochs):
            order = self._rng.permutation(n)
            total_loss = 0.0
            correct = 0
            for start in range(0, n, cfg.batch_size):
                idx = order[start:start + cfg.batch_size]
                xb, yb = x_all[idx], y_all[idx]
                logits = self.net.forward(xb, training=True)
                loss, grad = softmax_cross_entropy(logits, yb)
                self.net.backward(grad)
                optimizer.step(self.net.param_grads())
                total_loss += loss * len(idx)
                correct += int((logits.argmax(axis=1) == yb).sum())
            self.history.loss.append(total_loss / n)
            self.history.accuracy.append(correct / n)
        self._fitted = True
        return self.history

    def predict_proba(self, frames: np.ndarray) -> np.ndarray:
        """Class probabilities ``(N, K)``."""
        if not self._fitted:
            raise NotFittedError("classifier used before fit()")
        x = self._as_input(frames) - self._input_mean
        return softmax(self.net.forward(x, training=False))

    def predict(self, frames: np.ndarray) -> np.ndarray:
        """Hard class predictions ``(N,)``."""
        return self.predict_proba(frames).argmax(axis=1)

    def accuracy(self, frames: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of frames classified correctly."""
        preds = self.predict(frames)
        y = np.asarray(labels, dtype=np.int64)
        if y.shape != preds.shape:
            raise ConfigurationError(
                f"labels shape {y.shape} != predictions shape {preds.shape}")
        if preds.size == 0:
            return 0.0
        return float((preds == y).mean())

    def state_dict(self) -> dict:
        """Weights plus the fitted input mean."""
        state = dict(self.net.state_dict())
        state["_input_mean"] = np.array([self._input_mean])
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore weights saved by :meth:`state_dict`."""
        self._input_mean = float(np.asarray(state["_input_mean"])[0])
        self.net.load_state_dict(
            {k: v for k, v in state.items() if k != "_input_mean"})
        self._fitted = True

    @property
    def is_fitted(self) -> bool:
        return self._fitted
