"""Sequential layer container with backprop and (de)serialization hooks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Layer
from repro.nn.optim import ParamGrad


class Sequential:
    """A linear stack of layers.

    ``forward`` threads the input through every layer; ``backward`` threads
    the loss gradient back, filling each layer's parameter gradients.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def param_grads(self) -> List[ParamGrad]:
        """(param, grad) pairs across all layers, for an optimizer step."""
        pairs: List[ParamGrad] = []
        for layer in self.layers:
            params = layer.params()
            grads = layer.grads()
            for name in params:
                pairs.append((params[name], grads[name]))
        return pairs

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping ``"<layer_idx>.<param>" -> array`` for serialization."""
        state: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                state[f"{i}.{name}"] = param.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (keys and shapes must
        match exactly -- extra keys mean the archive belongs to a different
        architecture and loading it would silently discard weights)."""
        expected = set()
        for i, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                key = f"{i}.{name}"
                expected.add(key)
                if key not in state:
                    raise ConfigurationError(f"missing parameter {key} in state")
                value = state[key]
                if value.shape != param.shape:
                    raise ConfigurationError(
                        f"shape mismatch for {key}: saved {value.shape}, "
                        f"model {param.shape}")
                param[...] = value
        extra = sorted(set(state) - expected)
        if extra:
            raise ConfigurationError(
                f"unexpected parameters in state: {extra}")

    def num_parameters(self) -> int:
        """Total count of trainable scalars."""
        return sum(p.size for layer in self.layers
                   for p in layer.params().values())

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)
