"""Deep ensembles for predictive uncertainty (paper Section 5.2.2).

Each ensemble member is a :class:`~repro.nn.classifier.SoftmaxClassifier`
with independently random initial parameters, trained end-to-end on a
randomized shuffle of the *entire* training set (the paper follows
Lakshminarayanan et al. and avoids bagging for deep members).  Prediction is
the uniformly-weighted mixture of member probabilities.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.classifier import ClassifierConfig, SoftmaxClassifier
from repro.rng import SeedLike, ensure_rng


class DeepEnsemble:
    """Uniformly-weighted mixture of ``L`` softmax classifiers.

    The paper recommends ``L`` between 3 and 10; the constructor enforces
    ``L >= 2`` so Brier-score uncertainty is meaningful.
    """

    def __init__(self, base_config: ClassifierConfig, size: int = 5,
                 seed: SeedLike = None) -> None:
        if size < 2:
            raise ConfigurationError(f"ensemble size must be >= 2, got {size}")
        self._rng = ensure_rng(seed)
        member_seeds = self._rng.integers(0, 2**31 - 1, size=size)
        self.members: List[SoftmaxClassifier] = [
            SoftmaxClassifier(replace(base_config, seed=int(s)))
            for s in member_seeds
        ]
        self._fitted = False

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def num_classes(self) -> int:
        return self.members[0].num_classes

    def fit(self, frames: np.ndarray, labels: np.ndarray,
            epochs: Optional[int] = None) -> "DeepEnsemble":
        """Train every member on the full training data, shuffled per member."""
        for member in self.members:
            member.fit(frames, labels, epochs=epochs)
        self._fitted = True
        return self

    def predict_proba(self, frames: np.ndarray) -> np.ndarray:
        """Mixture probabilities ``p(y|x) = (1/L) sum_l p_l(y|x)``."""
        if not self._fitted:
            raise NotFittedError("ensemble used before fit()")
        total = None
        for member in self.members:
            probs = member.predict_proba(frames)
            total = probs if total is None else total + probs
        return total / self.size

    def predict(self, frames: np.ndarray) -> np.ndarray:
        """Hard predictions from the mixture."""
        return self.predict_proba(frames).argmax(axis=1)

    def member_proba(self, frames: np.ndarray) -> np.ndarray:
        """Stacked per-member probabilities, shape ``(L, N, K)``.

        Useful for disagreement diagnostics and bootstrap confidence
        intervals on the predictive uncertainty.
        """
        if not self._fitted:
            raise NotFittedError("ensemble used before fit()")
        return np.stack([m.predict_proba(frames) for m in self.members])

    def disagreement(self, frames: np.ndarray) -> np.ndarray:
        """Mean pairwise total-variation distance between members per frame."""
        probs = self.member_proba(frames)
        l = probs.shape[0]
        total = np.zeros(probs.shape[1])
        pairs = 0
        for i in range(l):
            for j in range(i + 1, l):
                total += 0.5 * np.abs(probs[i] - probs[j]).sum(axis=1)
                pairs += 1
        return total / pairs

    @property
    def is_fitted(self) -> bool:
        return self._fitted
