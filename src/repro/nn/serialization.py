"""Save / load model weights to ``.npz`` archives.

Serialization stores only parameter arrays keyed by ``Sequential.state_dict``
names; the caller reconstructs the architecture (from its config) and then
loads weights, mirroring the PyTorch ``state_dict`` pattern.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Sequential


def save_state(path: str, state: Dict[str, np.ndarray]) -> None:
    """Write a flat ``name -> array`` mapping to ``path`` (npz)."""
    if not state:
        raise ConfigurationError("refusing to save an empty state dict")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a mapping written by :func:`save_state`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_network(path: str, net: Sequential) -> None:
    """Persist a :class:`Sequential`'s parameters."""
    save_state(path, net.state_dict())


def load_network(path: str, net: Sequential) -> Sequential:
    """Load parameters into an architecture-matched :class:`Sequential`."""
    net.load_state_dict(load_state(path))
    return net
