"""Save / load model weights to ``.npz`` archives.

Serialization stores only parameter arrays keyed by ``Sequential.state_dict``
names; the caller reconstructs the architecture (from its config) and then
loads weights, mirroring the PyTorch ``state_dict`` pattern.

The same npz pattern also backs pipeline checkpoints: a *manifest archive*
bundles arbitrary arrays with one JSON manifest string in a single file
(:func:`save_manifest_archive` / :func:`load_manifest_archive`), so a
checkpoint needs no sidecar files.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Dict, Tuple

import numpy as np

from repro.errors import CheckpointError, ConfigurationError
from repro.nn.network import Sequential

_MANIFEST_KEY = "__manifest_json__"


def save_state(path: str, state: Dict[str, np.ndarray]) -> None:
    """Write a flat ``name -> array`` mapping to ``path`` (npz)."""
    if not state:
        raise ConfigurationError("refusing to save an empty state dict")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a mapping written by :func:`save_state`.

    Raises :class:`~repro.errors.ConfigurationError` when the file is
    missing, truncated or not an npz archive (numpy's raw ``BadZipFile`` /
    ``ValueError`` would otherwise leak past the pipeline's error
    boundary).
    """
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise ConfigurationError(f"no state archive at {path!r}")
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as error:
        raise ConfigurationError(
            f"corrupted or unreadable npz archive {path!r}: {error}")


def save_network(path: str, net: Sequential) -> None:
    """Persist a :class:`Sequential`'s parameters."""
    save_state(path, net.state_dict())


def load_network(path: str, net: Sequential) -> Sequential:
    """Load parameters into an architecture-matched :class:`Sequential`."""
    net.load_state_dict(load_state(path))
    return net


# ----------------------------------------------------------------------
# manifest archives (pipeline checkpoints)
# ----------------------------------------------------------------------
def save_manifest_archive(path: str, manifest: dict,
                          arrays: Dict[str, np.ndarray]) -> None:
    """Write ``arrays`` plus a JSON ``manifest`` into one npz file.

    The manifest rides along as a zero-dimensional string array under a
    reserved key, so the archive stays a plain npz readable by
    :func:`load_state` too.
    """
    if _MANIFEST_KEY in arrays:
        raise ConfigurationError(
            f"array name {_MANIFEST_KEY!r} is reserved for the manifest")
    payload = dict(arrays)
    payload[_MANIFEST_KEY] = np.asarray(json.dumps(manifest))
    save_state(path, payload)


def load_manifest_archive(path: str) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Read an archive written by :func:`save_manifest_archive`.

    Returns ``(manifest, arrays)``; raises
    :class:`~repro.errors.CheckpointError` when the manifest is absent or
    not valid JSON.
    """
    state = load_state(path)
    raw = state.pop(_MANIFEST_KEY, None)
    if raw is None:
        raise CheckpointError(
            f"archive {path!r} carries no manifest (not a checkpoint?)")
    try:
        manifest = json.loads(str(raw))
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"archive {path!r} has a corrupt manifest: {error}")
    return manifest, state
