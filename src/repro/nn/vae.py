"""Variational autoencoder (paper Section 4.2.2).

The paper's VAE maps video frames to a latent Gaussian and is used for two
things: (1) producing i.i.d. samples ``Sigma_T`` from the distribution a
model's training data was drawn from, and (2) embedding incoming frames into
the latent space where nonconformity scores are computed.

Two architectures are provided:

- ``"conv"`` -- the paper's architecture: 3 convolutional layers and 2 fully
  connected heads (mean, log-variance) in the encoder; 1 fully connected
  layer followed by 3 convolutions (with nearest-neighbour upsampling) in the
  decoder.  Sigmoid output, BCE + KL loss.
- ``"dense"`` -- an MLP encoder/decoder with the same loss, an order of
  magnitude faster on CPU; used by the test suite and the scaled-down
  experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, NotFittedError
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU, Reshape, Sigmoid, Upsample2x
from repro.nn.losses import binary_cross_entropy, gaussian_kl
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.rng import SeedLike, ensure_rng

_LOGVAR_CLIP = 10.0


@dataclass
class VAEConfig:
    """Configuration for :class:`VAE`.

    ``input_shape`` is ``(C, H, W)``; for the conv architecture ``H`` and
    ``W`` must be divisible by 8 (three stride-2 convolutions).
    """

    input_shape: Tuple[int, int, int] = (1, 32, 32)
    latent_dim: int = 8
    architecture: str = "dense"
    hidden: int = 128
    conv_channels: Tuple[int, int, int] = (8, 16, 32)
    lr: float = 1e-3
    batch_size: int = 16
    epochs: int = 5
    kl_weight: float = 1.0
    augment_recon: bool = True
    recon_weight: float = 1.0
    augment_profile: bool = True
    profile_weight: float = 0.5
    profile_bins: int = 4
    calibration_fraction: float = 0.4
    z_clip: float = 3.0
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.latent_dim <= 0:
            raise ConfigurationError(f"latent_dim must be positive: {self.latent_dim}")
        if self.architecture not in ("conv", "dense"):
            raise ConfigurationError(
                f"architecture must be 'conv' or 'dense', got {self.architecture!r}")
        if self.architecture == "conv":
            _, h, w = self.input_shape
            if h % 8 or w % 8:
                raise ConfigurationError(
                    f"conv VAE needs H, W divisible by 8, got {(h, w)}")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.kl_weight < 0:
            raise ConfigurationError("kl_weight must be non-negative")
        if not 0.0 <= self.calibration_fraction < 1.0:
            raise ConfigurationError(
                f"calibration_fraction must be in [0, 1), got "
                f"{self.calibration_fraction}")
        if self.z_clip <= 0:
            raise ConfigurationError(
                f"z_clip must be positive, got {self.z_clip}")


@dataclass
class VAEHistory:
    """Per-epoch training losses."""

    total: List[float] = field(default_factory=list)
    reconstruction: List[float] = field(default_factory=list)
    kl: List[float] = field(default_factory=list)


class VAE:
    """Variational autoencoder over frames in ``[0, 1]``.

    Public surface:

    - :meth:`fit` -- train on a stack of frames.
    - :meth:`embed` -- posterior mean latent for frames (DI's frame embedding).
    - :meth:`sample_latents` -- i.i.d. latent samples ``Sigma_T`` drawn from
      the learned per-frame posteriors (paper Section 4.2.2).
    - :meth:`reconstruct` / :meth:`decode` -- generative direction.
    """

    def __init__(self, config: Optional[VAEConfig] = None) -> None:
        self.config = config or VAEConfig()
        self._rng = ensure_rng(self.config.seed)
        self._build()
        self._fitted = False
        self._train_means: Optional[np.ndarray] = None
        self._train_stds: Optional[np.ndarray] = None
        self._train_recon: Optional[np.ndarray] = None
        self._recon_mu = 0.0
        self._recon_sd = 1.0
        self._train_profiles: Optional[np.ndarray] = None
        self._profile_mu: Optional[np.ndarray] = None
        self._profile_sd: Optional[np.ndarray] = None
        self.history = VAEHistory()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        c, h, w = self.config.input_shape
        return c * h * w

    def _build(self) -> None:
        cfg = self.config
        seeds = self._rng.integers(0, 2**31 - 1, size=8)
        if cfg.architecture == "dense":
            d = self.input_dim
            self.encoder = Sequential([
                Dense(d, cfg.hidden, seed=int(seeds[0])), ReLU(),
                Dense(cfg.hidden, cfg.hidden, seed=int(seeds[1])), ReLU(),
            ])
            trunk_out = cfg.hidden
            self.decoder = Sequential([
                Dense(cfg.latent_dim, cfg.hidden, seed=int(seeds[2])), ReLU(),
                Dense(cfg.hidden, d, seed=int(seeds[3])), Sigmoid(),
            ])
        else:
            c, h, w = cfg.input_shape
            c1, c2, c3 = cfg.conv_channels
            self.encoder = Sequential([
                Conv2d(c, c1, 3, stride=2, padding=1, seed=int(seeds[0])), ReLU(),
                Conv2d(c1, c2, 3, stride=2, padding=1, seed=int(seeds[1])), ReLU(),
                Conv2d(c2, c3, 3, stride=2, padding=1, seed=int(seeds[2])), ReLU(),
                Flatten(),
            ])
            h8, w8 = h // 8, w // 8
            trunk_out = c3 * h8 * w8
            self.decoder = Sequential([
                Dense(cfg.latent_dim, trunk_out, seed=int(seeds[3])), ReLU(),
                Reshape((c3, h8, w8)),
                Upsample2x(),
                Conv2d(c3, c2, 3, stride=1, padding=1, seed=int(seeds[4])), ReLU(),
                Upsample2x(),
                Conv2d(c2, c1, 3, stride=1, padding=1, seed=int(seeds[5])), ReLU(),
                Upsample2x(),
                Conv2d(c1, c, 3, stride=1, padding=1, seed=int(seeds[6])),
                Sigmoid(),
            ])
        self.mean_head = Dense(trunk_out, cfg.latent_dim, seed=int(seeds[7]),
                               init="glorot")
        self.logvar_head = Dense(trunk_out, cfg.latent_dim,
                                 seed=int(seeds[7]) ^ 0x5DEECE, init="glorot")

    # ------------------------------------------------------------------
    # array plumbing
    # ------------------------------------------------------------------
    def _as_model_input(self, frames: np.ndarray) -> np.ndarray:
        """Coerce (N, D), (N, H, W) or (N, C, H, W) frames to model layout."""
        x = np.asarray(frames, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        c, h, w = self.config.input_shape
        if self.config.architecture == "dense":
            if x.ndim > 2:
                x = x.reshape(x.shape[0], -1)
            if x.shape[1] != self.input_dim:
                raise DimensionMismatchError(
                    f"VAE built for {self.input_dim} features, got {x.shape[1]}")
            return x
        if x.ndim == 2:
            x = x.reshape(x.shape[0], c, h, w)
        elif x.ndim == 3:
            x = x[:, None, :, :]
        if x.shape[1:] != (c, h, w):
            raise DimensionMismatchError(
                f"VAE built for {(c, h, w)} frames, got {x.shape[1:]}")
        return x

    def _flat(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    # ------------------------------------------------------------------
    # forward pieces
    # ------------------------------------------------------------------
    def encode(self, frames: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior ``(mean, logvar)`` for each frame."""
        x = self._as_model_input(frames)
        trunk = self.encoder.forward(x, training=False)
        mean = self.mean_head.forward(trunk, training=False)
        logvar = self.logvar_head.forward(trunk, training=False)
        return mean, np.clip(logvar, -_LOGVAR_CLIP, _LOGVAR_CLIP)

    def embed(self, frames: np.ndarray) -> np.ndarray:
        """Latent representation (posterior mean)."""
        mean, _ = self.encode(frames)
        return mean

    def augmented_embed(self, frames: np.ndarray) -> np.ndarray:
        """Deterministic embedding: posterior mean plus the augmentation
        coordinates (z-scored reconstruction error and row/column profiles).

        The noise-free counterpart of :meth:`sample_embed`, used by
        clustering baselines (ODIN) that need stable per-frame features
        rather than posterior samples.
        """
        x = self._as_model_input(frames)
        mean, _ = self.encode(x)
        parts = [mean]
        clip = self.config.z_clip
        if self.config.augment_recon and self._fitted:
            recon = self._recon_error(x, mean)
            scaled = np.clip((recon - self._recon_mu) / self._recon_sd,
                             -clip, clip)
            parts.append(self.config.recon_weight * scaled[:, None])
        if self.config.augment_profile and self._fitted:
            profiles = np.clip(
                (self._profiles(x) - self._profile_mu) / self._profile_sd,
                -clip, clip)
            parts.append(self.config.profile_weight * profiles)
        return np.hstack(parts)

    def sample_embed(self, frames: np.ndarray,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Posterior *sample* ``mean + eps * std`` for each frame.

        This is the embedding the Drift Inspector must use: ``Sigma_T`` is
        generated by sampling training-frame posteriors, so incoming frames
        have to be embedded the same way for null p-values to be uniform
        (comparing posterior means against posterior samples skews p-values
        toward 1 because means carry no posterior noise).

        With ``augment_recon`` (the default) the z-scored reconstruction
        error is appended as an extra coordinate.  A small latent can miss
        geometric drift (e.g. a camera-angle change) while still failing to
        *reconstruct* the shifted frames; the appended coordinate routes
        that signal through the same Sigma_T / KNN machinery.
        """
        x = self._as_model_input(frames)
        mean, logvar = self.encode(x)
        generator = rng if rng is not None else self._rng
        eps = generator.standard_normal(mean.shape)
        parts = [mean + eps * np.exp(0.5 * logvar)]
        clip = self.config.z_clip
        if self.config.augment_recon:
            recon = self._recon_error(x, mean)
            scaled = np.clip((recon - self._recon_mu) / self._recon_sd,
                             -clip, clip)
            parts.append(self.config.recon_weight * scaled[:, None])
        if self.config.augment_profile:
            profiles = np.clip(
                (self._profiles(x) - self._profile_mu) / self._profile_sd,
                -clip, clip)
            parts.append(self.config.profile_weight * profiles)
        return np.hstack(parts)

    def decode(self, z: np.ndarray) -> np.ndarray:
        """Decode latents to flattened frames in ``[0, 1]``."""
        z = np.asarray(z, dtype=np.float64)
        if z.ndim == 1:
            z = z[None, :]
        if z.shape[1] != self.config.latent_dim:
            raise DimensionMismatchError(
                f"latent_dim is {self.config.latent_dim}, got {z.shape[1]}")
        out = self.decoder.forward(z, training=False)
        return self._flat(out)

    def reconstruct(self, frames: np.ndarray) -> np.ndarray:
        """Encode then decode; returns flattened reconstructions."""
        return self.decode(self.embed(frames))

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, frames: np.ndarray, epochs: Optional[int] = None) -> VAEHistory:
        """Train on ``frames`` (values in [0, 1]) and cache posteriors.

        Following the inductive conformal martingale design, a held-out
        *calibration* split (``calibration_fraction`` of the frames) is
        excluded from gradient updates and used to compute the posterior /
        reconstruction / profile statistics behind ``Sigma_T``.  Statistics
        measured on training frames are biased (the network has seen them),
        which skews the stream's conformal p-values low and inflates false
        alarms; calibration frames are exchangeable with future null frames.
        """
        x_all = self._as_model_input(frames)
        n = x_all.shape[0]
        if n == 0:
            raise ConfigurationError("cannot fit VAE on zero frames")
        cfg = self.config
        n_cal = int(n * cfg.calibration_fraction)
        if n_cal >= 2:
            split = self._rng.permutation(n)
            cal_idx, train_idx = split[:n_cal], split[n_cal:]
        else:
            cal_idx = train_idx = np.arange(n)
        x_train = x_all[train_idx]
        optimizer = Adam(lr=cfg.lr)
        n_epochs = cfg.epochs if epochs is None else epochs
        n_train = x_train.shape[0]
        for _ in range(n_epochs):
            order = self._rng.permutation(n_train)
            epoch_total = epoch_rec = epoch_kl = 0.0
            batches = 0
            for start in range(0, n_train, cfg.batch_size):
                batch = x_train[order[start:start + cfg.batch_size]]
                rec, kl = self._train_step(batch, optimizer)
                epoch_rec += rec
                epoch_kl += kl
                epoch_total += rec + cfg.kl_weight * kl
                batches += 1
            self.history.reconstruction.append(epoch_rec / batches)
            self.history.kl.append(epoch_kl / batches)
            self.history.total.append(epoch_total / batches)
        x_all = x_all[cal_idx]
        mean, logvar = self.encode(x_all)
        self._train_means = mean
        self._train_stds = np.exp(0.5 * logvar)
        clip = self.config.z_clip
        if self.config.augment_recon:
            recon = self._recon_error(x_all, mean)
            self._recon_mu = float(recon.mean())
            self._recon_sd = float(max(recon.std(), 1e-9))
            self._train_recon = np.clip(
                (recon - self._recon_mu) / self._recon_sd, -clip, clip)
        if self.config.augment_profile:
            profiles = self._profiles(x_all)
            self._profile_mu = profiles.mean(axis=0)
            self._profile_sd = np.maximum(profiles.std(axis=0), 1e-9)
            self._train_profiles = np.clip(
                (profiles - self._profile_mu) / self._profile_sd,
                -clip, clip)
        self._fitted = True
        return self.history

    def _profiles(self, x: np.ndarray) -> np.ndarray:
        """Row/column intensity profiles binned to ``profile_bins`` each.

        These marginals capture the scene geometry (road position and tilt,
        landmark layout) that a small latent can miss, while per-frame
        object placement averages out.  They are z-scored with training
        statistics before being appended to the embedding.
        """
        flat = self._flat(x)
        c, h, w = self.config.input_shape
        imgs = flat.reshape(flat.shape[0], c, h, w).mean(axis=1)
        bins = self.config.profile_bins
        rows = imgs.mean(axis=2)   # (N, H)
        cols = imgs.mean(axis=1)   # (N, W)

        def binned(arr: np.ndarray, size: int) -> np.ndarray:
            if size % bins == 0:
                return arr.reshape(arr.shape[0], bins, size // bins).mean(axis=2)
            # uneven sizes: interpolate onto the bin grid
            grid = np.linspace(0, size - 1, bins)
            idx = np.clip(np.round(grid).astype(int), 0, size - 1)
            return arr[:, idx]

        return np.hstack([binned(rows, h), binned(cols, w)])

    def _recon_error(self, x: np.ndarray, mean: np.ndarray) -> np.ndarray:
        """Per-frame reconstruction error on block-downsampled frames.

        Errors are measured after 4x block-mean downsampling: small moving
        objects (2-3 px) average out, so the statistic tracks how well the
        VAE reproduces the *background geometry* (road, landmarks, gradient)
        rather than irreducible per-frame object placement noise.  That
        keeps the augmented coordinate stable within a distribution and
        sharply elevated after geometric drift.
        """
        recon = self.decode(mean)
        flat = self._flat(x)
        c, h, w = self.config.input_shape
        factor = 4 if (h % 4 == 0 and w % 4 == 0) else 1
        if factor > 1:
            n = flat.shape[0]
            shape = (n, c, h // factor, factor, w // factor, factor)
            r = recon.reshape(shape).mean(axis=(3, 5))
            f = flat.reshape(shape).mean(axis=(3, 5))
            return ((r - f) ** 2).mean(axis=(1, 2, 3))
        return ((recon - flat) ** 2).mean(axis=1)

    def _train_step(self, batch: np.ndarray, optimizer: Adam) -> Tuple[float, float]:
        cfg = self.config
        trunk = self.encoder.forward(batch, training=True)
        mean = self.mean_head.forward(trunk, training=True)
        logvar = np.clip(self.logvar_head.forward(trunk, training=True),
                         -_LOGVAR_CLIP, _LOGVAR_CLIP)
        eps = self._rng.standard_normal(mean.shape)
        std = np.exp(0.5 * logvar)
        z = mean + eps * std
        recon = self.decoder.forward(z, training=True)
        rec_loss, drecon = binary_cross_entropy(
            self._flat(recon), self._flat(batch))
        kl_loss, dmean_kl, dlogvar_kl = gaussian_kl(mean, logvar)
        dz = self.decoder.backward(drecon.reshape(recon.shape))
        dmean = dz + cfg.kl_weight * dmean_kl
        dlogvar = dz * eps * 0.5 * std + cfg.kl_weight * dlogvar_kl
        dtrunk = (self.mean_head.backward(dmean)
                  + self.logvar_head.backward(dlogvar))
        self.encoder.backward(dtrunk)
        pairs = (self.encoder.param_grads() + self.decoder.param_grads()
                 + [(self.mean_head.W, self.mean_head.dW),
                    (self.mean_head.b, self.mean_head.db),
                    (self.logvar_head.W, self.logvar_head.dW),
                    (self.logvar_head.b, self.logvar_head.db)])
        optimizer.step(pairs)
        return rec_loss, kl_loss

    def elbo(self, frames: np.ndarray) -> float:
        """Negative loss (BCE + KL) on frames; higher is better."""
        x = self._as_model_input(frames)
        mean, logvar = self.encode(x)
        recon = self.decode(mean)
        rec_loss, _ = binary_cross_entropy(recon, self._flat(x))
        kl_loss, _, _ = gaussian_kl(mean, logvar)
        return -(rec_loss + self.config.kl_weight * kl_loss)

    # ------------------------------------------------------------------
    # i.i.d. sampling (paper Section 4.2.2)
    # ------------------------------------------------------------------
    def sample_latents(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n`` i.i.d. latent samples forming ``Sigma_T``.

        Each sample picks a random training frame's posterior and draws from
        its Normal distribution, exactly the "randomly sample the Normal
        distribution using the learned mean and standard deviation" step of
        the paper.
        """
        if not self._fitted or self._train_means is None:
            raise NotFittedError("VAE.sample_latents requires a fitted VAE")
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        rng = ensure_rng(seed) if seed is not None else self._rng
        n_train = self._train_means.shape[0]
        # Draw indices without replacement when possible.  When more samples
        # than calibration frames are requested, the first and second halves
        # of the sample draw from *disjoint* frame subsets: duplicated
        # indices share their recon/profile coordinates (only the latent
        # noise differs), and a consumer that splits Sigma_T in half -- the
        # Drift Inspector's bag/calibration split -- must not see such twins
        # straddling the split, or calibration scores collapse and the
        # p-values de-calibrate.
        replace = n > n_train
        if replace:
            perm = rng.permutation(n_train)
            half_a, half_b = perm[: n_train // 2], perm[n_train // 2:]
            idx = np.concatenate([
                rng.choice(half_a, size=n // 2, replace=True),
                rng.choice(half_b, size=n - n // 2, replace=True),
            ])
        else:
            idx = rng.choice(n_train, size=n, replace=False)
        eps = rng.standard_normal((n, self.config.latent_dim))
        parts = [self._train_means[idx] + eps * self._train_stds[idx]]
        if self.config.augment_recon:
            parts.append(
                self.config.recon_weight * self._train_recon[idx][:, None])
        if self.config.augment_profile:
            parts.append(
                self.config.profile_weight * self._train_profiles[idx])
        return np.hstack(parts)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All weights and fitted statistics as a flat array mapping."""
        state = {}
        for prefix, net in (("encoder", self.encoder),
                            ("decoder", self.decoder)):
            for key, value in net.state_dict().items():
                state[f"{prefix}.{key}"] = value
        for prefix, head in (("mean_head", self.mean_head),
                             ("logvar_head", self.logvar_head)):
            state[f"{prefix}.W"] = head.W.copy()
            state[f"{prefix}.b"] = head.b.copy()
        if self._fitted:
            state["stats.train_means"] = self._train_means.copy()
            state["stats.train_stds"] = self._train_stds.copy()
            state["stats.recon_mu_sd"] = np.array(
                [self._recon_mu, self._recon_sd])
            if self._train_recon is not None:
                state["stats.train_recon"] = self._train_recon.copy()
            if self._train_profiles is not None:
                state["stats.train_profiles"] = self._train_profiles.copy()
                state["stats.profile_mu"] = self._profile_mu.copy()
                state["stats.profile_sd"] = self._profile_sd.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore weights and statistics saved by :meth:`state_dict`."""
        self.encoder.load_state_dict(
            {k[len("encoder."):]: v for k, v in state.items()
             if k.startswith("encoder.")})
        self.decoder.load_state_dict(
            {k[len("decoder."):]: v for k, v in state.items()
             if k.startswith("decoder.")})
        for prefix, head in (("mean_head", self.mean_head),
                             ("logvar_head", self.logvar_head)):
            head.W[...] = state[f"{prefix}.W"]
            head.b[...] = state[f"{prefix}.b"]
        if "stats.train_means" in state:
            self._train_means = np.asarray(state["stats.train_means"])
            self._train_stds = np.asarray(state["stats.train_stds"])
            self._recon_mu, self._recon_sd = map(
                float, state["stats.recon_mu_sd"])
            if "stats.train_recon" in state:
                self._train_recon = np.asarray(state["stats.train_recon"])
            if "stats.train_profiles" in state:
                self._train_profiles = np.asarray(
                    state["stats.train_profiles"])
                self._profile_mu = np.asarray(state["stats.profile_mu"])
                self._profile_sd = np.asarray(state["stats.profile_sd"])
            self._fitted = True

    @property
    def calibration_size(self) -> int:
        """Number of held-out calibration frames behind ``Sigma_T``.

        Requesting more than this many samples from :meth:`sample_latents`
        falls back to a smoothed bootstrap; keeping ``Sigma_T`` at or below
        this size preserves exact conformal calibration.
        """
        if self._train_means is None:
            raise NotFittedError("VAE not fitted")
        return int(self._train_means.shape[0])

    @property
    def is_fitted(self) -> bool:
        return self._fitted
