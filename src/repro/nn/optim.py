"""Optimizers over (parameter, gradient) dictionaries.

Optimizers hold per-parameter state keyed by ``id(param)``; parameters are
updated in place so layers keep their references.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError

ParamGrad = Tuple[np.ndarray, np.ndarray]


class Optimizer:
    """Base optimizer. Subclasses implement :meth:`_update`."""

    def step(self, param_grads: Iterable[ParamGrad]) -> None:
        """Apply one update to every ``(param, grad)`` pair, in place."""
        for param, grad in param_grads:
            if param.shape != grad.shape:
                raise ConfigurationError(
                    f"param/grad shape mismatch: {param.shape} vs {grad.shape}")
            self._update(param, grad)

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum > 0:
            v = self._velocity.setdefault(id(param), np.zeros_like(param))
            v *= self.momentum
            v -= self.lr * grad
            param += v
        else:
            param -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (the paper's training optimizer)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(
                f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        key = id(param)
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad ** 2
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def collect_param_grads(layers: Iterable) -> List[ParamGrad]:
    """Gather ``(param, grad)`` pairs from layers exposing params()/grads()."""
    pairs: List[ParamGrad] = []
    for layer in layers:
        params = layer.params()
        grads = layer.grads()
        for name, param in params.items():
            pairs.append((param, grads[name]))
    return pairs
