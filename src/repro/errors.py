"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at the pipeline boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """An algorithm or component was configured with invalid parameters."""


class NotFittedError(ReproError):
    """A model or detector was used before being trained / calibrated."""


class DimensionMismatchError(ReproError):
    """Input array shape does not match the shape a component was built for."""


class EmptyReferenceError(ReproError):
    """A conformal reference set (Sigma_T) is empty or too small to use."""


class StreamExhaustedError(ReproError):
    """A video stream ran out of frames while a component expected more."""


class RegistryError(ReproError):
    """A model registry lookup failed (unknown distribution or duplicate)."""


class FrameValidationError(ReproError):
    """An incoming frame failed validation (non-finite pixels, wrong shape
    or a dtype that cannot be coerced to float)."""


class CheckpointError(ReproError):
    """A pipeline checkpoint could not be written, read or applied (corrupt
    archive, version mismatch, or state incompatible with the session)."""


class FleetError(ReproError):
    """A fleet execution could not complete: a worker failed with a real
    error, or a crashed task exhausted its restart budget."""


class BenchReportError(ReproError):
    """A benchmark report violates the BENCH_pipeline.json schema."""


class TelemetryError(ReproError):
    """A telemetry summary violates the repro.obs report schema, or two
    shard summaries cannot be merged (e.g. histogram boundary mismatch)."""


class ServeError(ReproError):
    """The serving layer was misused (duplicate sessions, arrivals for an
    unknown stream, out-of-order arrival timestamps)."""


class ServeReportError(ReproError):
    """A serving SLO report violates the BENCH_serve.json schema."""


class DetectorZooError(ReproError):
    """The drift-detector zoo registry was misused (duplicate registration,
    unknown detector name, or a factory that builds a non-conforming
    monitor)."""


class DetectorReportError(ReproError):
    """A detector-accuracy report violates the BENCH_detectors.json
    schema."""


class ScenarioError(ReproError):
    """A drift script is malformed (unknown factor or kind, inconsistent
    temporal parameters) or could not be compiled to a backend."""


class CascadeError(ReproError):
    """The tiered monitoring cascade was misused (a tier that does not
    satisfy the DriftMonitor protocol, or invalid escalation-policy
    parameters)."""


class CascadeReportError(ReproError):
    """A cascade frontier report violates the BENCH_cascade.json schema."""


class ConformanceError(ReproError, AssertionError):
    """A detector failed the :mod:`repro.testing.conformance` kit.

    Derives from :class:`AssertionError` too, so plain ``pytest`` reporting
    and ``pytest.raises(AssertionError)`` both treat conformance failures
    as ordinary assertion failures."""
