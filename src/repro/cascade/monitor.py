"""The two-tier cascade monitor and its deterministic escalation policy.

``CascadeMonitor`` screens every frame with a cheap tier-0 monitor and
feeds only *escalated* frames to the expensive tier-1 detector.  The
whole composition satisfies :class:`~repro.runtime.protocols.DriftMonitor`
-- and, when both tiers qualify, :class:`~repro.runtime.protocols.
Snapshotable` plus ``observe_batch`` -- so a cascade is interchangeable
with a flat detector everywhere the kernel's ``monitor_factory`` seam is
accepted: sequential, batched, serve and fleet substrates all stay
bit-identical because escalation is a pure function of the tier-0
statistics and the policy's counters.

Escalation semantics (:class:`EscalationPolicy`):

- suspicion at or above ``threshold`` escalates the breaching frame and
  opens an escalation window covering the next ``window`` frames;
- any breach *inside* an open window refreshes it (sticky escalation: a
  sustained drift keeps the tier-1 detector fed until it rules);
- when a window drains without re-breach, ``cooldown`` frames must pass
  before the policy re-arms -- the hysteresis that stops a suspicion
  level hovering at the threshold from flapping the expensive tier.

The tier-1 monitor is the *authority* on drift: the cascade latches its
own ``drift_frame`` (in cascade frame indices, since tier 1 only sees a
subsequence) the first time the tier-1 detector flags.  Per-tier cost is
accounted two ways: an optional :class:`~repro.sim.clock.SimulatedClock`
is charged the tier's operations per observed frame, and the recorder
(when one is attached) carries ``cascade.frames`` /
``cascade.escalated_frames`` counters, per-tier simulated-microsecond
histograms, and a ``cascade.escalated`` logical event per window opening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CascadeError, CheckpointError, ConfigurationError
from repro.obs.recorder import NULL_RECORDER
from repro.runtime.protocols import DriftMonitor, Snapshotable
from repro.sim.costs import CostProfile, PAPER_COSTS

#: Simulated operations one tier-0 screen costs per frame.
TIER0_OPS: Tuple[str, ...] = ("pixelstat_screen",)

#: Simulated operations one tier-1 (VAE+DI) observation costs per frame.
TIER1_OPS: Tuple[str, ...] = ("vae_encode", "knn_nonconformity",
                              "martingale_update")

#: Histogram boundaries for the per-tier simulated-microsecond cost.
_US_BUCKETS: Tuple[float, ...] = (10.0, 50.0, 100.0, 500.0, 1000.0,
                                  2500.0, 5000.0, 10000.0)


class EscalationPolicy:
    """Deterministic threshold + window + hysteresis-cooldown machine.

    The policy is pure state-machine logic over the suspicion values it
    is shown -- no RNG, no clock -- so two policies with equal
    configuration and equal ``state_dict`` produce identical escalation
    sequences on identical inputs (the property the conformance kit's
    determinism clause pins).
    """

    def __init__(self, threshold: float = 3.5, window: int = 16,
                 cooldown: int = 32) -> None:
        if threshold <= 0:
            raise ConfigurationError(
                f"escalation threshold must be positive: {threshold}")
        if window < 1:
            raise ConfigurationError(
                f"escalation window must be >= 1: {window}")
        if cooldown < 0:
            raise ConfigurationError(
                f"cooldown must be non-negative: {cooldown}")
        self.threshold = float(threshold)
        self.window = int(window)
        self.cooldown = int(cooldown)
        self._window_left = 0
        self._cooldown_left = 0

    @property
    def escalated(self) -> bool:
        """Whether an escalation window is currently open."""
        return self._window_left > 0

    def decide(self, suspicion: float) -> bool:
        """Advance the machine one frame; returns whether this frame is
        escalated to tier 1."""
        if self._window_left > 0:
            self._window_left -= 1
            if suspicion >= self.threshold:
                self._window_left = self.window
            if self._window_left == 0:
                self._cooldown_left = self.cooldown
            return True
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return False
        if suspicion >= self.threshold:
            self._window_left = self.window
            return True
        return False

    def reset(self) -> None:
        self._window_left = 0
        self._cooldown_left = 0

    def state_dict(self) -> dict:
        return {"window_left": self._window_left,
                "cooldown_left": self._cooldown_left}

    def load_state_dict(self, state: dict) -> None:
        self._window_left = int(state["window_left"])
        self._cooldown_left = int(state["cooldown_left"])


@dataclass(frozen=True)
class CascadeDecision:
    """One frame's cascade verdict: the latched drift flag (tier-1
    authority), whether this frame was escalated, and the tier-0
    suspicion that drove the decision."""

    drift: bool
    escalated: bool
    suspicion: float


def _tier_qualifies(monitor: object) -> bool:
    """Whether a tier individually qualifies for the optimistic batched
    path: a callable ``observe_batch`` *and* Snapshotable -- the same
    rule :class:`~repro.runtime.monitoring.MonitorStage` applies."""
    return (callable(getattr(monitor, "observe_batch", None))
            and isinstance(monitor, Snapshotable))


class CascadeMonitor:
    """Compose a cheap tier-0 screen with an expensive tier-1 detector.

    Parameters
    ----------
    tier0 / tier1:
        Any two :class:`~repro.runtime.protocols.DriftMonitor` instances.
        Tier 0 should expose a ``suspicion`` attribute on its decisions
        (as :class:`~repro.detectors.tier0.Tier0Decision` does); a
        bool-only tier 0 degrades gracefully -- a raised flag counts as
        threshold-level suspicion.
    policy:
        The :class:`EscalationPolicy`; defaults are tuned for the
        gaussian certification fixtures.
    clock / profile / recorder:
        Optional cost and observability plumbing.  The clock is charged
        ``tier0_ops`` per frame and ``tier1_ops`` per escalated frame;
        the recorder gets counters, per-tier cost histograms and a
        ``cascade.escalated`` event per window opening.  Both default to
        inert (zoo-built cascades run bare).

    ``observe_batch`` is only *bound* when both tiers individually
    qualify for the kernel's optimistic batched path (callable
    ``observe_batch`` + Snapshotable).  A tier-1 monitor without a
    batched path (e.g. ODIN) has not certified snapshot-replay
    semantics, so the cascade refuses to advertise one on its behalf --
    :attr:`~repro.runtime.monitoring.MonitorStage.supports_rollback`
    then reports ``False`` and the kernel drives the cascade frame by
    frame, exactly as it drives the bare tier-1 monitor.
    """

    def __init__(self, tier0: DriftMonitor, tier1: DriftMonitor,
                 policy: Optional[EscalationPolicy] = None,
                 clock: Optional[object] = None,
                 profile: Optional[CostProfile] = None,
                 recorder: Optional[object] = None,
                 tier0_ops: Tuple[str, ...] = TIER0_OPS,
                 tier1_ops: Tuple[str, ...] = TIER1_OPS) -> None:
        for label, tier in (("tier0", tier0), ("tier1", tier1)):
            if not isinstance(tier, DriftMonitor):
                raise CascadeError(
                    f"cascade {label} monitor {type(tier).__name__} does "
                    f"not satisfy the DriftMonitor protocol")
        self.tier0 = tier0
        self.tier1 = tier1
        self.policy = policy if policy is not None else EscalationPolicy()
        self.clock = clock
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.tier0_ops = tuple(tier0_ops)
        self.tier1_ops = tuple(tier1_ops)
        costs = profile if profile is not None else PAPER_COSTS
        self._tier0_us = 1000.0 * sum(costs.cost(op)
                                      for op in self.tier0_ops)
        self._tier1_us = 1000.0 * sum(costs.cost(op)
                                      for op in self.tier1_ops)
        self._frame_index = 0
        self._drift_frame: Optional[int] = None
        self._frames_escalated = 0
        self._escalations = 0
        if _tier_qualifies(tier0) and _tier_qualifies(tier1):
            self.observe_batch = self._observe_batch

    # ------------------------------------------------------------------
    @property
    def drift_detected(self) -> bool:
        return self._drift_frame is not None

    @property
    def drift_frame(self) -> Optional[int]:
        return self._drift_frame

    @property
    def escalated(self) -> bool:
        return self.policy.escalated

    @property
    def frames_seen(self) -> int:
        return self._frame_index

    @property
    def frames_escalated(self) -> int:
        return self._frames_escalated

    @property
    def escalations(self) -> int:
        """How many escalation windows have been opened."""
        return self._escalations

    # ------------------------------------------------------------------
    def _suspicion_of(self, decision: object) -> float:
        suspicion = getattr(decision, "suspicion", None)
        if suspicion is not None:
            return float(suspicion)
        # bool-only tier 0: a raised flag is exactly threshold suspicion
        flagged = bool(getattr(decision, "drift", decision))
        return self.policy.threshold if flagged else 0.0

    def peek_suspicion(self, pixels: np.ndarray) -> Optional[float]:
        """Stateless tier-0 suspicion for one frame (``None`` when the
        tier-0 monitor offers no peek); the serving layer's degraded
        pass screens with this."""
        peek = getattr(self.tier0, "peek_suspicion", None)
        if peek is None:
            return None
        return float(peek(pixels))

    # ------------------------------------------------------------------
    def observe(self, pixels: np.ndarray) -> CascadeDecision:
        if self.clock is not None:
            for op in self.tier0_ops:
                self.clock.charge(op)
        suspicion = self._suspicion_of(self.tier0.observe(pixels))
        was_open = self.policy.escalated
        escalated = self.policy.decide(suspicion)
        if escalated:
            self._frames_escalated += 1
            if not was_open:
                self._escalations += 1
                self.obs.event("cascade.escalated", frame=self._frame_index,
                               suspicion=round(suspicion, 6))
            if self.clock is not None:
                for op in self.tier1_ops:
                    self.clock.charge(op)
            verdict = self.tier1.observe(pixels)
            drift_now = bool(getattr(verdict, "drift", verdict))
            if ((drift_now or self.tier1.drift_detected)
                    and self._drift_frame is None):
                self._drift_frame = self._frame_index
            self.obs.histogram("cascade.tier1_us", _US_BUCKETS).observe(
                self._tier1_us)
        self.obs.counter("cascade.frames").inc()
        if escalated:
            self.obs.counter("cascade.escalated_frames").inc()
        self.obs.histogram("cascade.tier0_us", _US_BUCKETS).observe(
            self._tier0_us)
        self._frame_index += 1
        return CascadeDecision(drift=self.drift_detected,
                               escalated=escalated, suspicion=suspicion)

    def _observe_batch(self, frames: np.ndarray) -> List[CascadeDecision]:
        """Observe a ``(B, ...)`` stack frame by frame (the loop is the
        implementation, so batched == sequential bit for bit).  Bound as
        ``observe_batch`` only when both tiers qualify -- see the class
        docstring."""
        arr = np.asarray(frames)
        if arr.ndim == 1:
            arr = arr[None, :]
        return [self.observe(frame) for frame in arr]

    def reset(self) -> None:
        """Re-arm both tiers and the escalation machine."""
        self.tier0.reset()
        self.tier1.reset()
        self.policy.reset()
        self._frame_index = 0
        self._drift_frame = None
        self._frames_escalated = 0
        self._escalations = 0

    # ------------------------------------------------------------------
    # Snapshotable (when both tiers are)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        for label, tier in (("tier0", self.tier0), ("tier1", self.tier1)):
            if not isinstance(tier, Snapshotable):
                raise CheckpointError(
                    f"cascade {label} monitor {type(tier).__name__} is not "
                    f"Snapshotable; the cascade cannot be checkpointed")
        return {
            "frame_index": self._frame_index,
            "drift_frame": self._drift_frame,
            "frames_escalated": self._frames_escalated,
            "escalations": self._escalations,
            "policy": self.policy.state_dict(),
            "tier0": self.tier0.state_dict(),
            "tier1": self.tier1.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._frame_index = int(state["frame_index"])
        drift_frame = state["drift_frame"]
        self._drift_frame = None if drift_frame is None else int(drift_frame)
        self._frames_escalated = int(state["frames_escalated"])
        self._escalations = int(state["escalations"])
        self.policy.load_state_dict(state["policy"])
        self.tier0.load_state_dict(state["tier0"])
        self.tier1.load_state_dict(state["tier1"])
