"""Tiered monitoring cascade: cheap screening in front of expensive
drift detection.

:class:`CascadeMonitor` composes any cheap tier-0 screen (typically
:class:`~repro.detectors.tier0.PixelStatMonitor`) with any expensive
tier-1 :class:`~repro.runtime.protocols.DriftMonitor` behind the *same*
``DriftMonitor`` protocol, so a cascade drops into the runtime kernel's
``monitor_factory`` seam exactly like a flat detector.  A deterministic
:class:`EscalationPolicy` -- suspicion threshold, escalation window,
hysteresis cooldown -- decides which frames pay the tier-1 price.

The accuracy/cost frontier benchmark lives in :mod:`repro.cascade.bench`
(deliberately not imported here: it reaches the detector zoo and the
shared fixtures, and eager import would put every cascade consumer
downstream of both).  The ``BENCH_cascade.json`` contract lives in
:mod:`repro.cascade.report`.
"""

from repro.cascade.monitor import (
    TIER0_OPS,
    TIER1_OPS,
    CascadeDecision,
    CascadeMonitor,
    EscalationPolicy,
)
from repro.cascade.report import (
    CASCADE_SCHEMA,
    frontier_summary,
    load_cascade_report,
    validate_cascade_report,
    write_cascade_report,
)

__all__ = [
    "CascadeMonitor",
    "CascadeDecision",
    "EscalationPolicy",
    "TIER0_OPS",
    "TIER1_OPS",
    "CASCADE_SCHEMA",
    "frontier_summary",
    "validate_cascade_report",
    "write_cascade_report",
    "load_cascade_report",
]
