"""The ``BENCH_cascade.json`` accuracy/cost-frontier contract.

``benchmarks/bench_cascade.py`` scores the tiered cascade against the
always-on Drift Inspector and the tier-0 screen alone across the
detector benchmark's scenario matrix, sweeping the escalation threshold,
and writes one document in this shape.  Like the perf, serving and
detector reports it is validated with the shared dependency-free
:mod:`repro.obs.schema` walker (plus a ``jsonschema`` cross-check when
that package is importable) and committed to the repo, so
``scripts/check.sh`` can diff frontier regressions in review.

Per mode x scenario the report carries the accuracy/cost cell:

``detection_delay`` / ``detected_runs`` / ``false_alarms``
    The detector benchmark's standard accuracy metrics, averaged over
    the scenario's seeds.

``escalated_pct``
    Share of monitor-mode frames the cascade escalated to tier 1
    (``100`` for the always-on mode, ``0`` for the screen alone).

``us_per_frame``
    Simulated cost per monitored frame in microseconds, from the
    :data:`~repro.sim.costs.PAPER_COSTS` profile: the tier-0 screen on
    every frame plus the tier-1 path on the escalated share.
"""

from __future__ import annotations

import json

from repro.errors import CascadeReportError
from repro.obs.schema import cross_check, validate_document

_CELL = {
    "type": "object",
    "required": ["detection_delay", "detected_runs", "runs",
                 "false_alarms", "escalated_pct", "us_per_frame"],
    "additionalProperties": False,
    "properties": {
        "detection_delay": {"type": ["number", "null"], "minimum": 0},
        "detected_runs": {"type": "integer", "minimum": 0},
        "runs": {"type": "integer", "minimum": 1},
        "false_alarms": {"type": "number", "minimum": 0},
        "escalated_pct": {"type": "number", "minimum": 0, "maximum": 100},
        "us_per_frame": {"type": "number", "exclusiveMinimum": 0},
    },
}

_MODE_ENTRY = {
    "type": "object",
    "required": ["kind", "threshold", "scenarios"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string",
                 "enum": ["cascade", "always-on", "tier0"]},
        "threshold": {"type": ["number", "null"], "exclusiveMinimum": 0},
        "scenarios": {"type": "object", "properties": {},
                      "additionalProperties": _CELL},
    },
}

_SCENARIO_ENTRY = {
    "type": "object",
    "required": ["frames", "onset", "seeds"],
    "additionalProperties": False,
    "properties": {
        "frames": {"type": "integer", "minimum": 1},
        "onset": {"type": ["integer", "null"], "minimum": 0},
        "seeds": {"type": "array", "items": {"type": "integer",
                                             "minimum": 0}},
    },
}

CASCADE_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro tiered-cascade accuracy/cost frontier report",
    "type": "object",
    "required": ["schema_version", "benchmark", "quick", "default_mode",
                 "scenarios", "modes"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer", "enum": [1]},
        "benchmark": {"type": "string"},
        "quick": {"type": "boolean"},
        "default_mode": {"type": "string"},
        "scenarios": {"type": "object", "properties": {},
                      "additionalProperties": _SCENARIO_ENTRY},
        "modes": {"type": "object", "properties": {},
                  "additionalProperties": _MODE_ENTRY},
    },
}


def validate_cascade_report(report: object) -> None:
    """Raise :class:`CascadeReportError` unless ``report`` satisfies
    :data:`CASCADE_SCHEMA`; cross-checks with ``jsonschema`` when
    available."""
    validate_document(report, CASCADE_SCHEMA, "cascade report",
                      CascadeReportError)
    cross_check(report, CASCADE_SCHEMA, "cascade report",
                CascadeReportError)
    if report["default_mode"] not in report["modes"]:
        raise CascadeReportError(
            f"default_mode {report['default_mode']!r} is not one of the "
            f"scored modes {sorted(report['modes'])}")


def write_cascade_report(path: str, report: dict) -> None:
    """Validate ``report`` and write it to ``path`` as formatted JSON."""
    validate_cascade_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_cascade_report(path: str) -> dict:
    """Read and validate a report written by
    :func:`write_cascade_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CascadeReportError(
                f"cascade report {path} is not valid JSON: {exc}") from exc
    validate_cascade_report(report)
    return report


def frontier_summary(report: dict) -> dict:
    """The headline frontier numbers the CI gate and README table use:
    for every mode, the stationary escalation share / cost and the
    abrupt-scenario detection delay."""
    summary = {}
    for name, entry in report["modes"].items():
        stationary = entry["scenarios"]["stationary"]
        abrupt = entry["scenarios"]["abrupt"]
        summary[name] = {
            "kind": entry["kind"],
            "threshold": entry["threshold"],
            "stationary_escalated_pct": stationary["escalated_pct"],
            "stationary_us_per_frame": stationary["us_per_frame"],
            "stationary_false_alarms": stationary["false_alarms"],
            "abrupt_delay": abrupt["detection_delay"],
            "abrupt_detected_runs": abrupt["detected_runs"],
        }
    return summary
