"""Accuracy/cost frontier benchmark for the tiered cascade.

Three monitoring configurations run through the full runtime kernel
(``make_pipeline`` + ``process_batched``, the substrate the equivalence
tests pin) on the detector benchmark's scenario matrix:

- ``always-on-di`` -- the paper's VAE+DI path on every frame (the
  accuracy ceiling and the cost ceiling);
- ``tier0-alone`` -- the pixel-statistic screen as the *only* monitor
  (the cost floor; its standalone latch is deliberately conservative);
- ``cascade@<t>`` -- the tiered cascade, swept over escalation
  thresholds ``t``, tier-0 screening every frame and the Drift
  Inspector fed only escalated windows.

Accuracy cells reuse the detector benchmark's metrics (detection delay
and false alarms against each scenario's onset).  Cost cells come from
the cascade's escalation counters -- recorded through a live
:class:`~repro.obs.Recorder` shared by the pipeline and the cascade, so
the counts survive monitor rebuilds on model swaps and roll back with
the optimistic batched path -- priced with the
:data:`~repro.sim.costs.PAPER_COSTS` profile.  Everything is a pure
function of the seeds, so the committed ``BENCH_cascade.json`` is
reproducible bit for bit.  Run via ``scripts/bench.sh cascade``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cascade.monitor import (
    TIER0_OPS,
    TIER1_OPS,
    CascadeMonitor,
    EscalationPolicy,
)
from repro.cascade.report import write_cascade_report  # noqa: F401
from repro.detectors import zoo
from repro.detectors.bench import DEFAULT_SEEDS, Scenario, scenario_matrix
from repro.errors import CascadeError
from repro.obs import Recorder
from repro.sim.costs import PAPER_COSTS
from repro.testing import (
    assert_rerun_identical,
    gaussian_stream,
    make_pipeline,
)

#: Escalation thresholds the frontier is swept over (reference-sigma
#: units of tier-0 suspicion).
DEFAULT_THRESHOLDS: Tuple[float, ...] = (2.5, 3.5, 5.0, 8.0)

#: The threshold the committed report's headline cascade mode uses.
DEFAULT_THRESHOLD: float = 3.5

_TIER0_US = 1000.0 * sum(PAPER_COSTS.cost(op) for op in TIER0_OPS)
_TIER1_US = 1000.0 * sum(PAPER_COSTS.cost(op) for op in TIER1_OPS)


@dataclass(frozen=True)
class CascadeMode:
    """One scored configuration of the monitoring seam."""

    name: str
    kind: str  # "cascade" | "always-on" | "tier0"
    threshold: Optional[float] = None


def mode_matrix(thresholds: Sequence[float] = DEFAULT_THRESHOLDS
                ) -> Dict[str, CascadeMode]:
    """The benchmark's modes, keyed by name."""
    if not thresholds:
        raise CascadeError("need at least one escalation threshold")
    modes = [CascadeMode("always-on-di", "always-on"),
             CascadeMode("tier0-alone", "tier0")]
    for threshold in thresholds:
        if threshold <= 0:
            raise CascadeError(
                f"escalation thresholds must be positive: {threshold}")
        modes.append(CascadeMode(f"cascade@{threshold:g}", "cascade",
                                 float(threshold)))
    return {mode.name: mode for mode in modes}


def default_mode_name(thresholds: Sequence[float] = DEFAULT_THRESHOLDS
                      ) -> str:
    """The headline cascade mode: ``DEFAULT_THRESHOLD`` when swept,
    otherwise the first threshold."""
    if DEFAULT_THRESHOLD in thresholds:
        return f"cascade@{DEFAULT_THRESHOLD:g}"
    return f"cascade@{thresholds[0]:g}"


def _monitor_factory(mode: CascadeMode, recorder: Recorder):
    if mode.kind == "always-on":
        return zoo.factory("inspector")
    if mode.kind == "tier0":
        return zoo.factory("pixelstat")

    def build(bundle):
        return CascadeMonitor(
            zoo.build("pixelstat", bundle),
            zoo.build("inspector", bundle),
            policy=EscalationPolicy(threshold=mode.threshold),
            recorder=recorder)

    return build


def score_run(mode: CascadeMode, scenario: Scenario, seed: int) -> dict:
    """Drive one mode through the kernel on one scenario seed.

    Returns the raw observations: ``delay`` (``None`` when the drift was
    never caught), ``false_alarms``, and the escalation accounting
    (``frames`` observed in monitor mode, ``escalated`` of them fed to
    tier 1).
    """
    frames = gaussian_stream(seed, list(scenario.segments))
    recorder = Recorder()
    pipeline = make_pipeline(seed, recorder=recorder,
                             monitor_factory=_monitor_factory(mode,
                                                              recorder))
    result = pipeline.process_batched(frames)
    indices = sorted(event.frame_index for event in result.detections)
    onset = scenario.onset
    if onset is None:
        false_alarms = len(indices)
        delay = None
    else:
        false_alarms = sum(1 for index in indices if index < onset)
        post = [index for index in indices if index >= onset]
        delay = post[0] - onset if post else None
    if mode.kind == "cascade":
        observed = recorder.counter("cascade.frames").value
        escalated = recorder.counter("cascade.escalated_frames").value
    else:
        observed = float(len(frames))
        escalated = observed if mode.kind == "always-on" else 0.0
    return {"delay": delay, "false_alarms": false_alarms,
            "frames": observed, "escalated": escalated}


def _us_per_frame(mode: CascadeMode, escalated_share: float) -> float:
    if mode.kind == "always-on":
        return _TIER1_US
    if mode.kind == "tier0":
        return _TIER0_US
    return _TIER0_US + _TIER1_US * escalated_share


def score_cell(mode: CascadeMode, scenario: Scenario,
               seeds: Sequence[int]) -> dict:
    """One schema-valid frontier cell: ``score_run`` averaged over
    ``seeds``."""
    runs = [score_run(mode, scenario, seed) for seed in seeds]
    delays = [run["delay"] for run in runs if run["delay"] is not None]
    frames = sum(run["frames"] for run in runs)
    escalated = sum(run["escalated"] for run in runs)
    share = escalated / frames if frames else 0.0
    return {
        "detection_delay": (round(sum(delays) / len(delays), 6)
                            if delays else None),
        "detected_runs": len(delays),
        "runs": len(runs),
        "false_alarms": round(sum(run["false_alarms"]
                                  for run in runs) / len(runs), 6),
        "escalated_pct": round(100.0 * share, 6),
        "us_per_frame": round(_us_per_frame(mode, share), 6),
    }


def run_benchmark(thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
                  scenarios: Optional[Dict[str, Scenario]] = None,
                  seeds: Sequence[int] = DEFAULT_SEEDS,
                  quick: bool = False) -> dict:
    """Score the cascade frontier across the matrix."""
    if not seeds:
        raise CascadeError("need at least one seed")
    matrix = scenarios if scenarios is not None else scenario_matrix(quick)
    modes = mode_matrix(thresholds)
    table = {
        name: {
            "kind": mode.kind,
            "threshold": mode.threshold,
            "scenarios": {scenario.name: score_cell(mode, scenario, seeds)
                          for scenario in matrix.values()},
        }
        for name, mode in modes.items()
    }
    first = next(iter(modes.values()))
    first_scenario = next(iter(matrix.values()))
    assert_rerun_identical(
        "cascade", f"{first.name} / {first_scenario.name}",
        table[first.name]["scenarios"][first_scenario.name],
        score_cell(first, first_scenario, seeds))
    return {
        "schema_version": 1,
        "benchmark": "tiered-cascade accuracy/cost frontier",
        "quick": quick,
        "default_mode": default_mode_name(thresholds),
        "scenarios": {scenario.name: {
            "frames": scenario.frames,
            "onset": scenario.onset,
            "seeds": list(seeds),
        } for scenario in matrix.values()},
        "modes": table,
    }
