"""Object detectors and per-distribution query models.

- :mod:`repro.detectors.base` -- detector protocol and result types.
- :mod:`repro.detectors.oracle` -- ``ReferenceDetector``, the Mask R-CNN
  substitute: near-perfect accuracy, one order of magnitude higher cost.
- :mod:`repro.detectors.fast` -- ``FastDetector``, the YOLOv7 substitute:
  fixed cost, drift-oblivious, accuracy degrades under hard conditions.
- :mod:`repro.detectors.classifier_filters` -- ``CountClassifier`` and
  ``SpatialFilter``, the VGG-19 / OD-CLF query-model substitutes trained per
  distribution.
"""

from repro.detectors.base import Detection, DetectionResult, Detector
from repro.detectors.classifier_filters import CountClassifier, SpatialFilter
from repro.detectors.fast import FastDetector
from repro.detectors.oracle import ReferenceDetector

__all__ = [
    "Detection",
    "DetectionResult",
    "Detector",
    "ReferenceDetector",
    "FastDetector",
    "CountClassifier",
    "SpatialFilter",
]
