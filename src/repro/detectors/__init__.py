"""Object detectors, per-distribution query models, and the drift zoo.

- :mod:`repro.detectors.base` -- detector protocol and result types.
- :mod:`repro.detectors.oracle` -- ``ReferenceDetector``, the Mask R-CNN
  substitute: near-perfect accuracy, one order of magnitude higher cost.
- :mod:`repro.detectors.fast` -- ``FastDetector``, the YOLOv7 substitute:
  fixed cost, drift-oblivious, accuracy degrades under hard conditions.
- :mod:`repro.detectors.classifier_filters` -- ``CountClassifier`` and
  ``SpatialFilter``, the VGG-19 / OD-CLF query-model substitutes trained per
  distribution.
- :mod:`repro.detectors.classical` -- deterministic in-repo DDM / EDDM /
  ADWIN / KSWIN / Page-Hinkley concept-drift detectors.
- :mod:`repro.detectors.zoo` -- the named registry of pluggable
  :class:`~repro.runtime.protocols.DriftMonitor` factories backing the
  kernel's ``monitor_factory`` hook.
- :mod:`repro.detectors.report` -- the ``BENCH_detectors.json`` accuracy
  contract (``DETECTORS_SCHEMA``) and its read/write helpers.
- :mod:`repro.detectors.bench` -- the scenario-matrix benchmark harness
  scoring every zoo entry on delay / false alarms / MTBFA.
"""

from repro.detectors.base import Detection, DetectionResult, Detector
from repro.detectors.classifier_filters import CountClassifier, SpatialFilter
from repro.detectors.fast import FastDetector
from repro.detectors.oracle import ReferenceDetector

# The zoo (and the classical detectors it registers) sit above
# ``repro.baselines``, which closes an import cycle back through
# ``repro.core.pipeline`` -> ``repro.detectors.classifier_filters`` if
# imported eagerly here, so those names resolve lazily (PEP 562).
_CLASSICAL = ("DDMDetector", "EDDMDetector", "ADWINDetector",
              "KSWINDetector", "PageHinkleyDetector")


def __getattr__(name):
    import importlib

    if name in _CLASSICAL:
        classical = importlib.import_module("repro.detectors.classical")
        return getattr(classical, name)
    if name in ("zoo", "DetectorSpec"):
        zoo = importlib.import_module("repro.detectors.zoo")
        return zoo if name == "zoo" else zoo.DetectorSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Detection",
    "DetectionResult",
    "Detector",
    "ReferenceDetector",
    "FastDetector",
    "CountClassifier",
    "SpatialFilter",
    "DetectorSpec",
    "zoo",
    "DDMDetector",
    "EDDMDetector",
    "ADWINDetector",
    "KSWINDetector",
    "PageHinkleyDetector",
]
