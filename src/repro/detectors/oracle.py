"""Reference detector -- the Mask R-CNN substitute.

Mask R-CNN plays two roles in the paper: the ground-truth annotation source
(hence its perfect Figure 7 accuracy) and the slow drift-oblivious baseline
of Table 9.  The reference detector reproduces both: it reads the renderer's
ground truth (optionally missing a small fraction of objects) and charges
the paper-calibrated 133.5 ms per frame against the simulated clock.
"""

from __future__ import annotations

from typing import Optional

from repro.detectors.base import Detection, DetectionResult, Detector
from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.clock import SimulatedClock
from repro.video.stream import Frame


class ReferenceDetector(Detector):
    """Near-perfect, expensive detector (Mask R-CNN role)."""

    cost_operation = "reference_detector_infer"

    def __init__(self, miss_rate: float = 0.0,
                 clock: Optional[SimulatedClock] = None,
                 seed: SeedLike = None) -> None:
        if not 0.0 <= miss_rate < 1.0:
            raise ConfigurationError(
                f"miss_rate must be in [0, 1), got {miss_rate}")
        self.miss_rate = miss_rate
        self.clock = clock
        self._rng = ensure_rng(seed)

    def detect(self, frame: Frame) -> DetectionResult:
        if self.clock is not None:
            self.clock.charge(self.cost_operation)
        detections = []
        for obj in frame.objects:
            if self.miss_rate > 0 and self._rng.uniform() < self.miss_rate:
                continue
            detections.append(Detection(kind=obj.kind, x=obj.x, y=obj.y,
                                        confidence=0.99))
        return DetectionResult(detections=detections)
