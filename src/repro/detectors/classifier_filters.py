"""Per-distribution query models (VGG-19 / OD-CLF substitutes).

The paper trains a VGG-19 count classifier and an OD-CLF spatial filter per
distribution for query processing (Section 6.3); both MSBO ensembles and the
drift-aware pipeline deploy them.  Here they are thin wrappers over
:class:`~repro.nn.classifier.SoftmaxClassifier` that know how to train from
:class:`~repro.video.stream.Frame` ground truth.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.classifier import ClassifierConfig, SoftmaxClassifier
from repro.rng import SeedLike
from repro.sim.clock import SimulatedClock
from repro.video.stream import Frame, frames_to_count_labels, frames_to_pixels


class CountClassifier:
    """Predicts the per-frame car count class (the count query's model)."""

    def __init__(self, config: Optional[ClassifierConfig] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.config = config or ClassifierConfig()
        self.classifier = SoftmaxClassifier(self.config)
        self.clock = clock

    @property
    def num_classes(self) -> int:
        return self.classifier.num_classes

    def fit_frames(self, frames: Sequence[Frame],
                   labels: Optional[np.ndarray] = None) -> "CountClassifier":
        """Train from frames; labels default to ground-truth count labels."""
        if len(frames) == 0:
            raise ConfigurationError("no frames to train on")
        pixels = frames_to_pixels(list(frames))
        if labels is None:
            labels = frames_to_count_labels(list(frames), self.num_classes)
        self.classifier.fit(pixels, labels)
        return self

    def fit(self, pixels: np.ndarray, labels: np.ndarray) -> "CountClassifier":
        """Train from raw pixel arrays (the trainer's entry point)."""
        self.classifier.fit(pixels, labels)
        return self

    def predict(self, pixels: np.ndarray) -> np.ndarray:
        if self.clock is not None:
            n = pixels.shape[0] if pixels.ndim > 2 else 1
            self.clock.charge("classifier_infer", times=n)
        return self.classifier.predict(pixels)

    def predict_proba(self, pixels: np.ndarray) -> np.ndarray:
        return self.classifier.predict_proba(pixels)

    def accuracy_on(self, frames: Sequence[Frame]) -> float:
        """Count-query accuracy A_q on a frame list (vs ground truth)."""
        pixels = frames_to_pixels(list(frames))
        labels = frames_to_count_labels(list(frames), self.num_classes)
        return self.classifier.accuracy(pixels, labels)

    @property
    def is_fitted(self) -> bool:
        return self.classifier.is_fitted


Predicate = Callable[[Frame], bool]


class SpatialFilter:
    """Binary classifier for a spatial predicate (the OD-CLF substitute).

    Trained to predict whether a frame satisfies a spatial relation such as
    "a bus is on the left side of a car" directly from pixels, as OD-CLF
    filters do in SVQ.
    """

    def __init__(self, predicate: Predicate,
                 config: Optional[ClassifierConfig] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        base = config or ClassifierConfig()
        self.config = replace(base, num_classes=2)
        self.predicate = predicate
        self.classifier = SoftmaxClassifier(self.config)
        self.clock = clock

    @property
    def num_classes(self) -> int:
        return 2

    def fit_frames(self, frames: Sequence[Frame],
                   labels: Optional[np.ndarray] = None) -> "SpatialFilter":
        if len(frames) == 0:
            raise ConfigurationError("no frames to train on")
        pixels = frames_to_pixels(list(frames))
        if labels is None:
            labels = np.asarray([int(self.predicate(f)) for f in frames],
                                dtype=np.int64)
        self.classifier.fit(pixels, labels)
        return self

    def fit(self, pixels: np.ndarray, labels: np.ndarray) -> "SpatialFilter":
        self.classifier.fit(pixels, labels)
        return self

    def predict(self, pixels: np.ndarray) -> np.ndarray:
        if self.clock is not None:
            n = pixels.shape[0] if pixels.ndim > 2 else 1
            self.clock.charge("classifier_infer", times=n)
        return self.classifier.predict(pixels)

    def predict_proba(self, pixels: np.ndarray) -> np.ndarray:
        return self.classifier.predict_proba(pixels)

    def accuracy_on(self, frames: Sequence[Frame]) -> float:
        """Spatial-query accuracy A_q on a frame list (vs ground truth)."""
        pixels = frames_to_pixels(list(frames))
        labels = np.asarray([int(self.predicate(f)) for f in frames],
                            dtype=np.int64)
        return self.classifier.accuracy(pixels, labels)

    @property
    def is_fitted(self) -> bool:
        return self.classifier.is_fitted


def make_count_classifier_factory(
        config: ClassifierConfig) -> Callable[[SeedLike], CountClassifier]:
    """Factory-of-factories used by :class:`~repro.core.selection.trainer`."""

    def factory(seed: SeedLike) -> CountClassifier:
        return CountClassifier(replace(config, seed=seed))

    return factory
