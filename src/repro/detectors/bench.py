"""Scenario-matrix accuracy benchmark for the detector zoo.

Every detector registered in :mod:`repro.detectors.zoo` is run through
the full runtime kernel (``make_pipeline`` + ``process_batched``, the
same substrate the equivalence tests pin) on a matrix of drift scenarios
-- abrupt, subtle, gradual, slow and stationary gaussian streams -- and
scored on the three standard drift-detection accuracy metrics:
detection delay, false-alarm count and mean time between false alarms.

The scenarios deliberately span the detectors' regimes: the abrupt shift
is what control charts (CUSUM, DDM, Page-Hinkley) eat for breakfast; the
subtle shift separates chart sensitivity from window tests; the gradual
and slow ramps reward detectors that integrate evidence (ADWIN, EDDM);
the stationary stream scores specificity -- every detection it provokes
is a false alarm.

Since PR 10 every scenario is compiled from a declarative
:class:`~repro.scenarios.DriftScript` (:meth:`Scenario.from_script`
lowers a script through :func:`~repro.scenarios.feature_plan`, bit-
identical to the historical segment lists), and
:func:`extended_scenario_matrix` adds the operational regimes --
single-factor drifts, recurring drift, an adversarially slow ramp,
camera displacement with recalibration, a transient occluder.  Script-
backed cells additionally carry per-factor *attribution*: sigma-unit
scores diagnosing which generative factor moved at the first detection.

Everything is a pure function of the seeds, so the committed
``BENCH_detectors.json`` is reproducible bit for bit on any machine.
Run via ``scripts/bench.sh detectors``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.detectors import zoo
from repro.detectors.report import write_detectors_report  # noqa: F401
from repro.errors import DetectorZooError
from repro.scenarios import (
    DriftScript,
    attribute_factors,
    core_scripts,
    feature_plan,
    operational_scripts,
)
from repro.testing import (
    assert_rerun_identical,
    gaussian_stream,
    make_pipeline,
)

#: Seeds each (detector, scenario) cell is averaged over.
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)


@dataclass(frozen=True)
class Scenario:
    """One entry of the drift matrix: a segmented gaussian stream.

    ``segments`` is a feature plan -- ``(centre, length)`` chunks whose
    centre is a float (isotropic) or a per-dimension tuple.  ``onset`` is
    the frame index where the distribution first leaves the reference;
    ``None`` marks a stationary control where any detection is a false
    alarm.  Script-backed scenarios (built by :meth:`from_script`) keep
    the originating :class:`~repro.scenarios.DriftScript` for ground
    truth and attribution; hand-rolled segment lists (``script=None``)
    remain fully supported.
    """

    name: str
    segments: Tuple[Tuple[object, int], ...]
    onset: Optional[int]
    script: Optional[DriftScript] = None

    @classmethod
    def from_script(cls, script: DriftScript) -> "Scenario":
        """Lower a drift script to a matrix entry (bit-identical to the
        legacy segment list when one existed)."""
        return cls(name=script.name, segments=feature_plan(script),
                   onset=script.onset, script=script)

    @property
    def frames(self) -> int:
        return sum(length for _, length in self.segments)

    @property
    def kind(self) -> Optional[str]:
        """The drift shape of a script-backed scenario."""
        if self.script is None or self.script.stationary:
            return None
        return self.script.tracks[0].kind

    @property
    def factors(self) -> Optional[Tuple[str, ...]]:
        """Ground-truth drifted factors of a script-backed scenario."""
        if self.script is None:
            return None
        return self.script.drifted_factors()

    def halved(self) -> "Scenario":
        """The ``--quick`` variant: every segment at half length."""
        if self.script is not None:
            return Scenario.from_script(self.script.scaled(0.5))
        segments = tuple((centre, max(length // 2, 1))
                         for centre, length in self.segments)
        onset = None if self.onset is None else sum(
            length for _, length in segments[:self._onset_segments()])
        return Scenario(self.name, segments, onset)

    def _onset_segments(self) -> int:
        """How many leading segments precede the onset."""
        if self.onset is None:
            return 0
        total, count = 0, 0
        for _, length in self.segments:
            if total >= self.onset:
                break
            total += length
            count += 1
        return count


def _script_matrix(scripts: Dict[str, DriftScript],
                   quick: bool) -> Dict[str, Scenario]:
    matrix = {}
    for script in scripts.values():
        if quick:
            script = script.scaled(0.5)
        matrix[script.name] = Scenario.from_script(script)
    return matrix


def scenario_matrix(quick: bool = False) -> Dict[str, Scenario]:
    """The benchmark's core drift matrix, keyed by scenario name.

    Compiled from :func:`~repro.scenarios.core_scripts`; the golden
    tests pin the compiled streams bit for bit against the historical
    hand-rolled segment lists.
    """
    return _script_matrix(core_scripts(), quick)


def extended_scenario_matrix(quick: bool = False) -> Dict[str, Scenario]:
    """The core matrix plus the operational scenarios
    (:func:`~repro.scenarios.operational_scripts`): what
    ``benchmarks/bench_detectors.py`` scores."""
    matrix = _script_matrix(core_scripts(), quick)
    matrix.update(_script_matrix(operational_scripts(), quick))
    return matrix


def score_run(detector: str, scenario: Scenario, seed: int) -> dict:
    """Drive one detector through the kernel on one scenario seed.

    Returns the raw per-run observations: ``delay`` (``None`` when the
    drift was never caught), ``false_alarms`` and ``pre_frames`` (how
    many frames the stream spends in the reference distribution, the
    false-alarm exposure window).  Script-backed scenarios whose drift
    was caught also carry ``attribution``: per-factor sigma scores at
    the first post-onset detection.
    """
    frames = gaussian_stream(seed, list(scenario.segments))
    pipeline = make_pipeline(seed, monitor_factory=zoo.factory(detector))
    result = pipeline.process_batched(frames)
    indices = sorted(event.frame_index for event in result.detections)
    onset = scenario.onset
    if onset is None:
        false_alarms = len(indices)
        delay = None
    else:
        false_alarms = sum(1 for index in indices if index < onset)
        post = [index for index in indices if index >= onset]
        delay = post[0] - onset if post else None
    pre_frames = scenario.frames if onset is None else onset
    run = {"delay": delay, "false_alarms": false_alarms,
           "pre_frames": pre_frames}
    if scenario.script is not None and delay is not None:
        run["attribution"] = attribute_factors(frames, onset + delay)
    return run


def score_cell(detector: str, scenario: Scenario,
               seeds: Sequence[int]) -> dict:
    """One schema-valid metrics entry: ``score_run`` averaged over
    ``seeds``."""
    runs = [score_run(detector, scenario, seed) for seed in seeds]
    delays = [run["delay"] for run in runs if run["delay"] is not None]
    total_false = sum(run["false_alarms"] for run in runs)
    total_pre = sum(run["pre_frames"] for run in runs)
    cell = {
        "detection_delay": (round(sum(delays) / len(delays), 6)
                            if delays else None),
        "detected_runs": len(delays),
        "runs": len(runs),
        "false_alarms": round(total_false / len(runs), 6),
        "mtbfa": (round(total_pre / total_false, 6)
                  if total_false else None),
    }
    attributions = [run["attribution"] for run in runs
                    if "attribution" in run]
    if attributions:
        cell["attribution"] = {
            factor: round(sum(attribution[factor]
                              for attribution in attributions)
                          / len(attributions), 6)
            for factor in attributions[0]}
    return cell


def run_benchmark(detectors: Optional[Iterable[str]] = None,
                  scenarios: Optional[Dict[str, Scenario]] = None,
                  seeds: Sequence[int] = DEFAULT_SEEDS,
                  quick: bool = False) -> dict:
    """Score ``detectors`` (default: the whole zoo) across the matrix."""
    names = tuple(detectors) if detectors is not None else zoo.names()
    if not names:
        raise DetectorZooError("no detectors selected for the benchmark")
    matrix = scenarios if scenarios is not None else scenario_matrix(quick)
    if not seeds:
        raise DetectorZooError("need at least one seed")
    table: Dict[str, dict] = {}
    for name in names:
        spec = zoo.get_spec(name)
        table[name] = {
            "family": spec.family,
            "rollback": spec.rollback,
            "scenarios": {scenario.name: score_cell(name, scenario, seeds)
                          for scenario in matrix.values()},
        }
    first = names[0]
    first_scenario = next(iter(matrix.values()))
    assert_rerun_identical(
        "detector", f"{first} / {first_scenario.name}",
        table[first]["scenarios"][first_scenario.name],
        score_cell(first, first_scenario, seeds))
    return {
        "schema_version": 1,
        "benchmark": "drift-detector accuracy: scenario matrix",
        "quick": quick,
        "scenarios": {scenario.name: _scenario_entry(scenario, seeds)
                      for scenario in matrix.values()},
        "detectors": table,
    }


def _scenario_entry(scenario: Scenario, seeds: Sequence[int]) -> dict:
    entry = {
        "frames": scenario.frames,
        "onset": scenario.onset,
        "seeds": list(seeds),
    }
    # ground-truth labels only exist for script-backed scenarios; the
    # keys are optional in DETECTORS_SCHEMA so hand-rolled segment lists
    # (and reports written before PR 10) stay valid
    if scenario.script is not None:
        entry["factors"] = list(scenario.factors)
        entry["kind"] = scenario.kind
    return entry
