"""Scenario-matrix accuracy benchmark for the detector zoo.

Every detector registered in :mod:`repro.detectors.zoo` is run through
the full runtime kernel (``make_pipeline`` + ``process_batched``, the
same substrate the equivalence tests pin) on a matrix of drift scenarios
-- abrupt, subtle, gradual, slow and stationary gaussian streams -- and
scored on the three standard drift-detection accuracy metrics:
detection delay, false-alarm count and mean time between false alarms.

The scenarios deliberately span the detectors' regimes: the abrupt shift
is what control charts (CUSUM, DDM, Page-Hinkley) eat for breakfast; the
subtle shift separates chart sensitivity from window tests; the gradual
and slow ramps reward detectors that integrate evidence (ADWIN, EDDM);
the stationary stream scores specificity -- every detection it provokes
is a false alarm.

Everything is a pure function of the seeds, so the committed
``BENCH_detectors.json`` is reproducible bit for bit on any machine.
Run via ``scripts/bench.sh detectors``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.detectors import zoo
from repro.detectors.report import write_detectors_report  # noqa: F401
from repro.errors import DetectorZooError
from repro.testing import gaussian_stream, make_pipeline

#: Seeds each (detector, scenario) cell is averaged over.
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)


@dataclass(frozen=True)
class Scenario:
    """One entry of the drift matrix: a segmented gaussian stream.

    ``onset`` is the frame index where the distribution first leaves the
    reference; ``None`` marks a stationary control where any detection
    is a false alarm.
    """

    name: str
    segments: Tuple[Tuple[float, int], ...]
    onset: Optional[int]

    @property
    def frames(self) -> int:
        return sum(length for _, length in self.segments)

    def halved(self) -> "Scenario":
        """The ``--quick`` variant: every segment at half length."""
        segments = tuple((centre, max(length // 2, 1))
                         for centre, length in self.segments)
        onset = None if self.onset is None else sum(
            length for _, length in segments[:self._onset_segments()])
        return Scenario(self.name, segments, onset)

    def _onset_segments(self) -> int:
        """How many leading segments precede the onset."""
        if self.onset is None:
            return 0
        total, count = 0, 0
        for _, length in self.segments:
            if total >= self.onset:
                break
            total += length
            count += 1
        return count


def scenario_matrix(quick: bool = False) -> Dict[str, Scenario]:
    """The benchmark's drift matrix, keyed by scenario name."""
    full = (
        Scenario("abrupt", ((0.0, 120), (6.0, 120)), onset=120),
        Scenario("subtle", ((0.0, 120), (2.5, 120)), onset=120),
        Scenario("gradual", ((0.0, 120), (1.5, 40), (3.0, 40), (4.5, 40),
                             (6.0, 80)), onset=120),
        Scenario("slow", ((0.0, 120), (0.75, 60), (1.5, 60), (2.25, 60),
                          (3.0, 100)), onset=120),
        Scenario("stationary", ((0.0, 240),), onset=None),
    )
    if quick:
        full = tuple(scenario.halved() for scenario in full)
    return {scenario.name: scenario for scenario in full}


def score_run(detector: str, scenario: Scenario, seed: int) -> dict:
    """Drive one detector through the kernel on one scenario seed.

    Returns the raw per-run observations: ``delay`` (``None`` when the
    drift was never caught), ``false_alarms`` and ``pre_frames`` (how
    many frames the stream spends in the reference distribution, the
    false-alarm exposure window).
    """
    frames = gaussian_stream(seed, list(scenario.segments))
    pipeline = make_pipeline(seed, monitor_factory=zoo.factory(detector))
    result = pipeline.process_batched(frames)
    indices = sorted(event.frame_index for event in result.detections)
    onset = scenario.onset
    if onset is None:
        false_alarms = len(indices)
        delay = None
    else:
        false_alarms = sum(1 for index in indices if index < onset)
        post = [index for index in indices if index >= onset]
        delay = post[0] - onset if post else None
    pre_frames = scenario.frames if onset is None else onset
    return {"delay": delay, "false_alarms": false_alarms,
            "pre_frames": pre_frames}


def score_cell(detector: str, scenario: Scenario,
               seeds: Sequence[int]) -> dict:
    """One schema-valid metrics entry: ``score_run`` averaged over
    ``seeds``."""
    runs = [score_run(detector, scenario, seed) for seed in seeds]
    delays = [run["delay"] for run in runs if run["delay"] is not None]
    total_false = sum(run["false_alarms"] for run in runs)
    total_pre = sum(run["pre_frames"] for run in runs)
    return {
        "detection_delay": (round(sum(delays) / len(delays), 6)
                            if delays else None),
        "detected_runs": len(delays),
        "runs": len(runs),
        "false_alarms": round(total_false / len(runs), 6),
        "mtbfa": (round(total_pre / total_false, 6)
                  if total_false else None),
    }


def run_benchmark(detectors: Optional[Iterable[str]] = None,
                  scenarios: Optional[Dict[str, Scenario]] = None,
                  seeds: Sequence[int] = DEFAULT_SEEDS,
                  quick: bool = False) -> dict:
    """Score ``detectors`` (default: the whole zoo) across the matrix."""
    names = tuple(detectors) if detectors is not None else zoo.names()
    if not names:
        raise DetectorZooError("no detectors selected for the benchmark")
    matrix = scenarios if scenarios is not None else scenario_matrix(quick)
    if not seeds:
        raise DetectorZooError("need at least one seed")
    table: Dict[str, dict] = {}
    for name in names:
        spec = zoo.get_spec(name)
        table[name] = {
            "family": spec.family,
            "rollback": spec.rollback,
            "scenarios": {scenario.name: score_cell(name, scenario, seeds)
                          for scenario in matrix.values()},
        }
    first = names[0]
    first_scenario = next(iter(matrix.values()))
    rerun = score_cell(first, first_scenario, seeds)
    if rerun != table[first]["scenarios"][first_scenario.name]:
        raise AssertionError(
            f"detector benchmark is not deterministic: {first} / "
            f"{first_scenario.name} changed between runs")
    return {
        "schema_version": 1,
        "benchmark": "drift-detector accuracy: scenario matrix",
        "quick": quick,
        "scenarios": {scenario.name: {
            "frames": scenario.frames,
            "onset": scenario.onset,
            "seeds": list(seeds),
        } for scenario in matrix.values()},
        "detectors": table,
    }
