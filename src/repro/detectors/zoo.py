"""The drift-detector zoo: a named registry of pluggable monitors.

PR 6 made :class:`~repro.runtime.protocols.DriftMonitor` a
runtime-checkable protocol so alternative detectors can back the kernel's
monitoring stage via ``monitor_factory``.  This module cashes that in: a
registry mapping detector *names* to factories with exactly the
``monitor_factory`` signature -- called with the deployed
:class:`~repro.core.selection.registry.ModelBundle`, returning a fresh
:class:`DriftMonitor` armed against that bundle's reference sample.

Registered out of the box:

==============  ==========================================================
``inspector``   the paper's Drift Inspector (conformal martingale)
``odin``        ODIN-Detect, seeded with the bundle's reference cluster
``cusum``       Page's CUSUM chart on the distance statistic
``ks``          sliding-window per-dimension Kolmogorov-Smirnov test
``moment``      z-test on the windowed mean of the distance statistic
``ddm``         Drift Detection Method (binarized outlier rate)
``eddm``        Early DDM (gap between outliers)
``adwin``       adaptive windowing with Hoeffding cuts
``kswin``       KS test of the newest window slice vs the remainder
``page-hinkley`` Page-Hinkley cumulative mean-shift test
``pixelstat``   tier-0 pixel-statistic screen (SSIM / edge IoU / moments)
``cascade-di``  tiered cascade: pixelstat screen -> Drift Inspector
==============  ==========================================================

Every entry builds a :class:`~repro.runtime.protocols.Snapshotable`
monitor, so checkpoint/restore, fleet crash recovery and the optimistic
batched-rollback path keep working whatever the session is monitored by.
Adding a detector is one :func:`register` call plus a passing run of the
conformance kit in :mod:`repro.testing.conformance`::

    from repro.detectors import zoo

    @zoo.register("my-detector", family="custom",
                  description="one-line summary")
    def _build(bundle):
        return MyDetector(bundle.sigma)

    pipeline = make_pipeline(monitor_factory=zoo.factory("my-detector"))

``benchmarks/bench_detectors.py`` runs every registered entry through the
runtime kernel across the scenario matrix and scores detection delay,
false-alarm rate and mean time between false alarms into
``BENCH_detectors.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.baselines.statistical import (
    CusumDetector,
    KSDetector,
    MomentDetector,
)
from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.detectors.classical import (
    ADWINDetector,
    DDMDetector,
    EDDMDetector,
    KSWINDetector,
    PageHinkleyDetector,
)
from repro.errors import DetectorZooError
from repro.runtime.protocols import DriftMonitor

#: The fixed seed zoo-built inspectors use for their tie-breaking RNG
#: streams -- a pure function of nothing, so every substrate that builds a
#: monitor from the same bundle gets a bit-identical one.
ZOO_SEED = 0


@dataclass(frozen=True)
class DetectorSpec:
    """One registry entry.

    ``factory`` has the kernel's ``monitor_factory`` signature; ``rollback``
    records whether the built monitor is expected to qualify for the
    optimistic batched path (``observe_batch`` + Snapshotable) -- the
    conformance kit pins this so an entry cannot silently fall off the
    fast path.
    """

    name: str
    family: str
    description: str
    factory: Callable[[object], DriftMonitor]
    rollback: bool = True

    def build(self, bundle) -> DriftMonitor:
        """Build a fresh monitor armed against ``bundle``'s reference."""
        monitor = self.factory(bundle)
        if not isinstance(monitor, DriftMonitor):
            raise DetectorZooError(
                f"factory for {self.name!r} built {type(monitor).__name__}, "
                f"which does not satisfy the DriftMonitor protocol")
        return monitor


_REGISTRY: Dict[str, DetectorSpec] = {}


def register(name: str, family: str, description: str,
             rollback: bool = True,
             factory: Optional[Callable[[object], DriftMonitor]] = None):
    """Register a detector factory under ``name``.

    Usable directly (``register(name, ..., factory=fn)``) or as a
    decorator.  Raises :class:`DetectorZooError` on duplicate names so two
    subsystems cannot silently shadow each other's detectors.
    """
    if not name or not isinstance(name, str):
        raise DetectorZooError(f"detector name must be a non-empty string, "
                               f"got {name!r}")

    def _register(fn: Callable[[object], DriftMonitor]):
        if name in _REGISTRY:
            raise DetectorZooError(
                f"detector {name!r} is already registered "
                f"({_REGISTRY[name].description})")
        _REGISTRY[name] = DetectorSpec(name=name, family=family,
                                       description=description,
                                       factory=fn, rollback=rollback)
        return fn

    if factory is not None:
        _register(factory)
        return factory
    return _register


def unregister(name: str) -> None:
    """Remove a registered detector (primarily for test isolation)."""
    if name not in _REGISTRY:
        raise DetectorZooError(f"unknown detector {name!r}; registered: "
                               f"{', '.join(names())}")
    del _REGISTRY[name]


def names() -> Tuple[str, ...]:
    """Registered detector names, sorted for deterministic iteration."""
    return tuple(sorted(_REGISTRY))


def specs() -> Iterator[DetectorSpec]:
    """Registered specs in :func:`names` order."""
    for name in names():
        yield _REGISTRY[name]


def get_spec(name: str) -> DetectorSpec:
    """Look up one entry; raises :class:`DetectorZooError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DetectorZooError(
            f"unknown detector {name!r}; registered: "
            f"{', '.join(names())}") from None


def factory(name: str) -> Callable[[object], DriftMonitor]:
    """The entry's ``monitor_factory`` (pass straight to the pipeline)."""
    return get_spec(name).factory


def build(name: str, bundle) -> DriftMonitor:
    """Build ``name``'s monitor against ``bundle`` (factory + protocol
    check)."""
    return get_spec(name).build(bundle)


# ----------------------------------------------------------------------
# built-in entries
# ----------------------------------------------------------------------
@register("inspector", family="conformal",
          description="Drift Inspector: conformal-martingale monitor "
                      "(paper Algorithm 1)")
def _build_inspector(bundle) -> DriftInspector:
    return DriftInspector(
        bundle.sigma,
        reference_scores=bundle.reference_scores,
        embedder=getattr(bundle, "vae", None),
        config=DriftInspectorConfig(seed=ZOO_SEED))


@register("pixelstat", family="tier0",
          description="tier-0 pixel-statistic screen: SSIM / edge-IoU / "
                      "moment z-scores against the reference sample")
def _build_pixelstat(bundle):
    from repro.detectors.tier0 import PixelStatMonitor
    return PixelStatMonitor(bundle.sigma)


@register("cascade-di", family="cascade",
          description="tiered cascade: pixel-stat screen escalating "
                      "suspicious windows to the Drift Inspector")
def _build_cascade_di(bundle):
    from repro.cascade.monitor import CascadeMonitor, EscalationPolicy
    from repro.detectors.tier0 import PixelStatMonitor
    return CascadeMonitor(PixelStatMonitor(bundle.sigma),
                          _build_inspector(bundle),
                          policy=EscalationPolicy())


@register("odin", family="clustering", rollback=False,
          description="ODIN-Detect: temporary-cluster stabilisation "
                      "(KL promotion test)")
def _build_odin(bundle) -> OdinDetect:
    detect = OdinDetect(config=OdinConfig(),
                        embedder=getattr(bundle, "vae", None))
    detect.seed_cluster(bundle.name, bundle.sigma, model_name=bundle.name)
    return detect


@register("cusum", family="statistical",
          description="Page's CUSUM control chart on the distance "
                      "statistic")
def _build_cusum(bundle) -> CusumDetector:
    return CusumDetector(bundle.sigma)


@register("ks", family="statistical",
          description="sliding-window per-dimension KS test (Bonferroni)")
def _build_ks(bundle) -> KSDetector:
    return KSDetector(bundle.sigma)


@register("moment", family="statistical",
          description="z-test on the windowed mean of the distance "
                      "statistic")
def _build_moment(bundle) -> MomentDetector:
    return MomentDetector(bundle.sigma)


@register("ddm", family="error-rate",
          description="Drift Detection Method: control chart on the "
                      "binarized outlier rate")
def _build_ddm(bundle) -> DDMDetector:
    return DDMDetector(bundle.sigma)


@register("eddm", family="error-rate",
          description="Early DDM: collapse of the gap between outliers")
def _build_eddm(bundle) -> EDDMDetector:
    return EDDMDetector(bundle.sigma)


@register("adwin", family="windowing",
          description="ADWIN: adaptive window with Hoeffding-bound cuts")
def _build_adwin(bundle) -> ADWINDetector:
    return ADWINDetector(bundle.sigma)


@register("kswin", family="windowing",
          description="KSWIN: KS test of the newest window slice vs the "
                      "remainder")
def _build_kswin(bundle) -> KSWINDetector:
    return KSWINDetector(bundle.sigma)


@register("page-hinkley", family="sequential",
          description="Page-Hinkley cumulative test for a sustained "
                      "mean shift")
def _build_page_hinkley(bundle) -> PageHinkleyDetector:
    return PageHinkleyDetector(bundle.sigma)
