"""The ``BENCH_detectors.json`` accuracy contract.

``benchmarks/bench_detectors.py`` scores every detector registered in the
:mod:`~repro.detectors.zoo` on the scenario matrix and writes one document
in this shape.  Like the perf, telemetry and serving reports it is
validated with the shared dependency-free :mod:`repro.obs.schema` walker
(plus a ``jsonschema`` cross-check when that package is importable) and
committed to the repo, so `scripts/check.sh` can diff detector accuracy
regressions the same way it diffs latency regressions.

Per detector x scenario the report carries three standard drift-detection
accuracy metrics, each averaged over the scenario's seeds:

``detection_delay``
    Frames between the scenario's drift onset and the first detection at
    or after it; ``null`` when no run detected the drift (and
    ``detected_runs`` says how many did).

``false_alarms``
    Mean number of detections strictly before the onset (every detection
    counts as false on stationary scenarios).

``mtbfa``
    Mean time between false alarms: pre-onset frames divided by the false
    alarm count, ``null`` when no run raised any false alarm.

Script-backed scenarios (compiled from :mod:`repro.scenarios` drift
scripts) additionally label each scenario with its ground-truth
``factors`` and drift ``kind``, and each detected cell with an
``attribution`` map -- per-factor sigma scores diagnosing which
generative factor moved at the first post-onset detection, averaged over
detecting seeds.  All three keys are optional, so hand-rolled segment
scenarios and pre-existing reports stay schema-valid.

Every number is computed in the simulated pipeline, so the committed
report is reproducible bit for bit on any machine.
"""

from __future__ import annotations

import json

from repro.errors import DetectorReportError
from repro.obs.schema import cross_check, validate_document

_METRICS_ENTRY = {
    "type": "object",
    "required": ["detection_delay", "detected_runs", "runs",
                 "false_alarms", "mtbfa"],
    "additionalProperties": False,
    "properties": {
        "detection_delay": {"type": ["number", "null"], "minimum": 0},
        "detected_runs": {"type": "integer", "minimum": 0},
        "runs": {"type": "integer", "minimum": 1},
        "false_alarms": {"type": "number", "minimum": 0},
        "mtbfa": {"type": ["number", "null"], "exclusiveMinimum": 0},
        "attribution": {"type": "object", "properties": {},
                        "additionalProperties": {"type": "number",
                                                 "minimum": 0}},
    },
}

_DETECTOR_ENTRY = {
    "type": "object",
    "required": ["family", "rollback", "scenarios"],
    "additionalProperties": False,
    "properties": {
        "family": {"type": "string"},
        "rollback": {"type": "boolean"},
        "scenarios": {"type": "object", "properties": {},
                      "additionalProperties": _METRICS_ENTRY},
    },
}

_SCENARIO_ENTRY = {
    "type": "object",
    "required": ["frames", "onset", "seeds"],
    "additionalProperties": False,
    "properties": {
        "frames": {"type": "integer", "minimum": 1},
        "onset": {"type": ["integer", "null"], "minimum": 0},
        "seeds": {"type": "array", "items": {"type": "integer",
                                             "minimum": 0}},
        "factors": {"type": "array", "items": {"type": "string"}},
        "kind": {"type": ["string", "null"]},
    },
}

DETECTORS_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro drift-detector accuracy report (scenario matrix)",
    "type": "object",
    "required": ["schema_version", "benchmark", "quick", "scenarios",
                 "detectors"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer", "enum": [1]},
        "benchmark": {"type": "string"},
        "quick": {"type": "boolean"},
        "scenarios": {"type": "object", "properties": {},
                      "additionalProperties": _SCENARIO_ENTRY},
        "detectors": {"type": "object", "properties": {},
                      "additionalProperties": _DETECTOR_ENTRY},
    },
}


def validate_detectors_report(report: object) -> None:
    """Raise :class:`DetectorReportError` unless ``report`` satisfies
    :data:`DETECTORS_SCHEMA`; cross-checks with ``jsonschema`` when
    available."""
    validate_document(report, DETECTORS_SCHEMA, "detectors report",
                      DetectorReportError)
    cross_check(report, DETECTORS_SCHEMA, "detectors report",
                DetectorReportError)


def write_detectors_report(path: str, report: dict) -> None:
    """Validate ``report`` and write it to ``path`` as formatted JSON."""
    validate_detectors_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_detectors_report(path: str) -> dict:
    """Read and validate a report written by
    :func:`write_detectors_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DetectorReportError(
                f"detectors report {path} is not valid JSON: {exc}") from exc
    validate_detectors_report(report)
    return report
