"""Detector protocol and result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.video.stream import Frame


@dataclass(frozen=True)
class Detection:
    """One detected object."""

    kind: str
    x: float
    y: float
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ConfigurationError(
                f"confidence must be in [0, 1], got {self.confidence}")


@dataclass
class DetectionResult:
    """Per-frame detector output."""

    detections: List[Detection] = field(default_factory=list)

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.detections)
        return sum(1 for d in self.detections if d.kind == kind)

    def positions(self, kind: str) -> List[Tuple[float, float]]:
        return [(d.x, d.y) for d in self.detections if d.kind == kind]


class Detector:
    """Base detector: maps a :class:`Frame` to a :class:`DetectionResult`.

    Subclasses implement :meth:`detect`; ``cost_operation`` names the
    simulated-clock entry charged per frame.
    """

    cost_operation: str = ""

    def detect(self, frame: Frame) -> DetectionResult:
        raise NotImplementedError

    def __call__(self, frame: Frame) -> DetectionResult:
        return self.detect(frame)
