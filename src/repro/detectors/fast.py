"""Fast drift-oblivious detector -- the YOLOv7 substitute.

YOLOv7 in the paper runs on every frame at a fixed cost, never adapts to
drift, and its accuracy suffers on hard conditions (night, rain, snow) it
was not specialised for.  The fast detector models exactly that: a base
per-object miss/hallucination rate that grows with condition difficulty,
plus the paper-calibrated 15.4 ms/frame simulated cost.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.detectors.base import Detection, DetectionResult, Detector
from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.sim.clock import SimulatedClock
from repro.video.objects import CAR
from repro.video.stream import Frame

# Per-condition object miss probability: generic detectors lose recall at
# night and in weather clutter.  Angle changes hurt less (objects remain
# visible) but still cost some recall from unfamiliar geometry.
DEFAULT_MISS_RATES: Dict[str, float] = {
    "day": 0.45,
    "night": 0.80,
    "rain": 0.60,
    "snow": 0.65,
}
DEFAULT_ANGLE_MISS = 0.50
DEFAULT_HALLUCINATION = 0.25


class FastDetector(Detector):
    """Fixed-cost generic detector with condition-dependent recall."""

    cost_operation = "fast_detector_infer"

    def __init__(self, miss_rates: Optional[Dict[str, float]] = None,
                 hallucination_rate: float = DEFAULT_HALLUCINATION,
                 clock: Optional[SimulatedClock] = None,
                 seed: SeedLike = None) -> None:
        self.miss_rates = dict(DEFAULT_MISS_RATES)
        if miss_rates:
            self.miss_rates.update(miss_rates)
        for name, rate in self.miss_rates.items():
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"miss rate for {name!r} must be in [0, 1), got {rate}")
        if not 0.0 <= hallucination_rate < 1.0:
            raise ConfigurationError(
                f"hallucination_rate must be in [0, 1), got "
                f"{hallucination_rate}")
        self.hallucination_rate = hallucination_rate
        self.clock = clock
        self._rng = ensure_rng(seed)

    def _miss_rate(self, frame: Frame) -> float:
        if frame.condition in self.miss_rates:
            return self.miss_rates[frame.condition]
        # unfamiliar condition name (e.g. blended dusk or a camera angle):
        # treat as moderately hard
        return DEFAULT_ANGLE_MISS

    def detect(self, frame: Frame) -> DetectionResult:
        if self.clock is not None:
            self.clock.charge(self.cost_operation)
        miss = self._miss_rate(frame)
        detections = []
        for obj in frame.objects:
            if self._rng.uniform() < miss:
                continue
            detections.append(Detection(kind=obj.kind, x=obj.x, y=obj.y,
                                        confidence=float(
                                            self._rng.uniform(0.5, 0.95))))
        if self._rng.uniform() < self.hallucination_rate:
            detections.append(Detection(
                kind=CAR, x=float(self._rng.uniform()),
                y=float(self._rng.uniform()),
                confidence=float(self._rng.uniform(0.5, 0.7))))
        return DetectionResult(detections=detections)
