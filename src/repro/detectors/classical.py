"""Classical concept-drift detectors, implemented deterministically in-repo.

The drift-detection literature (Frouros and the evaluation frameworks in
PAPERS.md) is built around a handful of canonical detectors that watch a
*univariate* statistic -- an error rate or a score stream -- rather than a
latent distribution.  This module adapts five of them to the repo's
monitoring contract so they can back the runtime kernel's monitoring stage
and be benchmarked head-to-head against the paper's Drift Inspector:

- :class:`DDMDetector` -- Gama et al.'s Drift Detection Method: a control
  chart on a binarized outlier rate with warning/drift confidence levels.
- :class:`EDDMDetector` -- Baena-Garcia et al.'s Early DDM: monitors the
  distance *between* outliers, sensitive to gradual drift.
- :class:`ADWINDetector` -- Bifet & Gavalda's ADaptive WINdowing: grows a
  window and cuts it wherever two sub-windows differ by more than a
  Hoeffding bound, shrinking onto the post-change distribution.
- :class:`KSWINDetector` -- Kolmogorov-Smirnov WINdowing: KS two-sample
  test of the newest slice of a sliding window against the older remainder
  (the usual random subsample is replaced by the deterministic prefix, so
  runs are exactly reproducible).
- :class:`PageHinkleyDetector` -- the Page-Hinkley cumulative test for a
  sustained increase in the mean.

Every detector consumes frames (or pre-embedded latents) through the same
``observe`` / ``reset`` / ``state_dict`` surface as the repo's other
monitors: the drift statistic is the z-scored distance of the frame's
latent from the reference centroid, exactly as
:class:`~repro.baselines.statistical.CusumDetector` computes it.  All five
are :class:`~repro.runtime.protocols.Snapshotable` and expose the
loop-based ``observe_batch`` of :class:`_ReferenceDetector`, so they ride
the kernel's optimistic batched-rollback path with trivially bit-identical
sequential/batched behaviour.  None of them consumes randomness: two
detectors built from the same reference produce identical decision
sequences on identical streams.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np
from scipy import stats

from repro.baselines.statistical import _ReferenceDetector
from repro.errors import ConfigurationError


class _ScalarStatDetector(_ReferenceDetector):
    """Shared z-scored distance-from-centroid statistic.

    The reference sample fixes a centroid and the mean/std of member
    distances from it; each observed frame is reduced to
    ``z = (dist - mu) / sigma``.  Under the reference distribution ``z``
    fluctuates around zero; after a distribution shift it jumps by the
    shift magnitude in reference-sigma units.
    """

    def __init__(self, reference: np.ndarray,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        self._centroid = self.reference.mean(axis=0)
        dists = np.sqrt(((self.reference - self._centroid) ** 2).sum(axis=1))
        self._mu = float(dists.mean())
        self._sigma = float(max(dists.std(), 1e-9))

    def _statistic(self, frame: np.ndarray) -> float:
        latent = self._embed(frame)
        dist = float(np.sqrt(((latent - self._centroid) ** 2).sum()))
        return (dist - self._mu) / self._sigma

    def _update(self, z: float) -> bool:
        """Consume one statistic; return this frame's raw drift verdict."""
        raise NotImplementedError

    def observe(self, frame: np.ndarray) -> bool:
        drift = self._update(self._statistic(frame))
        if drift and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self._frame_index += 1
        return drift or self.drift_detected


class DDMDetector(_ScalarStatDetector):
    """Drift Detection Method (Gama et al. 2004) on the outlier rate.

    Frames whose statistic exceeds ``error_z`` are *errors*; DDM tracks the
    Laplace-smoothed error rate ``p_t`` and its binomial deviation ``s_t``,
    records the minimum of ``p + s``, and raises a *warning* when
    ``p + s >= p_min + warning_level * s_min`` and *drift* at
    ``drift_level``.  The smoothing (``p = (errors + 1) / (n + 2)``) keeps
    ``p_min + s_min`` strictly positive on error-free prefixes, which the
    textbook formulation needs an arbitrary epsilon for.
    """

    def __init__(self, reference: np.ndarray, error_z: float = 3.5,
                 min_observations: int = 30, warning_level: float = 2.0,
                 drift_level: float = 3.0,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if error_z <= 0:
            raise ConfigurationError(f"error_z must be positive: {error_z}")
        if min_observations < 2:
            raise ConfigurationError(
                f"min_observations must be >= 2: {min_observations}")
        if not 0.0 < warning_level <= drift_level:
            raise ConfigurationError(
                f"need 0 < warning_level <= drift_level, got "
                f"{warning_level} / {drift_level}")
        self.error_z = error_z
        self.min_observations = min_observations
        self.warning_level = warning_level
        self.drift_level = drift_level
        self._n = 0
        self._errors = 0
        self._p_min: Optional[float] = None
        self._s_min = 0.0
        self._warning = False

    @property
    def warning_detected(self) -> bool:
        """Whether the chart sits in (or drifted through) the warning
        zone; drift implies warning because ``drift_level >=
        warning_level``."""
        return self._warning or self.drift_detected

    def reset(self) -> None:
        super().reset()
        self._n = 0
        self._errors = 0
        self._p_min = None
        self._s_min = 0.0
        self._warning = False

    def _extra_state(self) -> dict:
        return {"n": self._n, "errors": self._errors, "p_min": self._p_min,
                "s_min": self._s_min, "warning": self._warning}

    def _load_extra_state(self, state: dict) -> None:
        self._n = int(state["n"])
        self._errors = int(state["errors"])
        p_min = state["p_min"]
        self._p_min = None if p_min is None else float(p_min)
        self._s_min = float(state["s_min"])
        self._warning = bool(state["warning"])

    def _update(self, z: float) -> bool:
        self._n += 1
        if z > self.error_z:
            self._errors += 1
        p = (self._errors + 1) / (self._n + 2)
        s = float(np.sqrt(p * (1.0 - p) / self._n))
        if self._n < self.min_observations:
            return False
        if self._p_min is None or p + s < self._p_min + self._s_min:
            self._p_min, self._s_min = p, s
        level = p + s
        if level >= self._p_min + self.drift_level * self._s_min:
            self._warning = True
            return True
        self._warning = level >= self._p_min + self.warning_level * self._s_min
        return False


class EDDMDetector(_ScalarStatDetector):
    """Early DDM (Baena-Garcia et al. 2006) on the gap between outliers.

    Tracks the running mean/std of the *distance in frames* between
    consecutive errors.  Under the reference distribution errors are rare
    and far apart; after a drift they arrive back to back, so
    ``m2s = mean + 2 * std`` collapses relative to its historical maximum.
    Warning fires when ``m2s / max_m2s < warning_ratio`` and drift at
    ``drift_ratio``, once ``min_errors`` errors have been seen.
    """

    def __init__(self, reference: np.ndarray, error_z: float = 2.0,
                 min_errors: int = 15, warning_ratio: float = 0.92,
                 drift_ratio: float = 0.85,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if error_z <= 0:
            raise ConfigurationError(f"error_z must be positive: {error_z}")
        if min_errors < 2:
            raise ConfigurationError(
                f"min_errors must be >= 2: {min_errors}")
        if not 0.0 < drift_ratio <= warning_ratio < 1.0:
            raise ConfigurationError(
                f"need 0 < drift_ratio <= warning_ratio < 1, got "
                f"{drift_ratio} / {warning_ratio}")
        self.error_z = error_z
        self.min_errors = min_errors
        self.warning_ratio = warning_ratio
        self.drift_ratio = drift_ratio
        self._num_errors = 0
        self._last_error: Optional[int] = None
        self._gap_mean = 0.0
        self._gap_m2 = 0.0
        self._max_m2s = 0.0
        self._warning = False

    @property
    def warning_detected(self) -> bool:
        """Warning-zone flag; drift implies warning because
        ``drift_ratio <= warning_ratio``."""
        return self._warning or self.drift_detected

    def reset(self) -> None:
        super().reset()
        self._num_errors = 0
        self._last_error = None
        self._gap_mean = 0.0
        self._gap_m2 = 0.0
        self._max_m2s = 0.0
        self._warning = False

    def _extra_state(self) -> dict:
        return {"num_errors": self._num_errors,
                "last_error": self._last_error,
                "gap_mean": self._gap_mean, "gap_m2": self._gap_m2,
                "max_m2s": self._max_m2s, "warning": self._warning}

    def _load_extra_state(self, state: dict) -> None:
        self._num_errors = int(state["num_errors"])
        last = state["last_error"]
        self._last_error = None if last is None else int(last)
        self._gap_mean = float(state["gap_mean"])
        self._gap_m2 = float(state["gap_m2"])
        self._max_m2s = float(state["max_m2s"])
        self._warning = bool(state["warning"])

    def _update(self, z: float) -> bool:
        if z <= self.error_z:
            return False
        if self._last_error is None:
            # the first error anchors the gap sequence but has no gap
            self._last_error = self._frame_index
            return False
        gap = float(self._frame_index - self._last_error)
        self._last_error = self._frame_index
        self._num_errors += 1
        delta = gap - self._gap_mean
        self._gap_mean += delta / self._num_errors
        self._gap_m2 += delta * (gap - self._gap_mean)
        std = float(np.sqrt(self._gap_m2 / self._num_errors))
        m2s = self._gap_mean + 2.0 * std
        if m2s > self._max_m2s:
            self._max_m2s = m2s
        if self._num_errors < self.min_errors or self._max_m2s <= 0.0:
            return False
        ratio = m2s / self._max_m2s
        if ratio < self.drift_ratio:
            self._warning = True
            return True
        self._warning = ratio < self.warning_ratio
        return False


class ADWINDetector(_ScalarStatDetector):
    """ADaptive WINdowing (Bifet & Gavalda 2007), exact over a bounded
    window.

    The statistic is squashed into ``[0, 1]`` (``clip(z / clip_z)``) so the
    Hoeffding bound applies; every insert re-checks all admissible splits
    of the retained window and drops elements from the head while any split
    shows ``|mean_old - mean_new| > eps_cut``.  A cut *is* the drift
    signal, and the surviving window covers only the post-change
    distribution -- the window-shrink property the family is named for.

    The canonical implementation compresses the window into exponential
    buckets; with ``max_window`` bounding retention the exact O(W) scan per
    frame stays cheap and keeps the cut decision bit-reproducible.
    """

    def __init__(self, reference: np.ndarray, delta: float = 0.002,
                 max_window: int = 256, min_cut: int = 5,
                 clip_z: float = 6.0,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1): {delta}")
        if max_window < 2 * min_cut:
            raise ConfigurationError(
                f"max_window must be >= 2 * min_cut: {max_window}")
        if min_cut < 1:
            raise ConfigurationError(f"min_cut must be >= 1: {min_cut}")
        if clip_z <= 0:
            raise ConfigurationError(f"clip_z must be positive: {clip_z}")
        self.delta = delta
        self.max_window = max_window
        self.min_cut = min_cut
        self.clip_z = clip_z
        self._window: Deque[float] = deque(maxlen=max_window)

    @property
    def window_size(self) -> int:
        """Current adaptive-window length (shrinks after a cut)."""
        return len(self._window)

    def reset(self) -> None:
        super().reset()
        self._window.clear()

    def _extra_state(self) -> dict:
        return {"window": list(self._window)}

    def _load_extra_state(self, state: dict) -> None:
        self._window.clear()
        self._window.extend(float(v) for v in state["window"])

    def _cut_point(self) -> Optional[int]:
        """First head length whose split violates the Hoeffding bound."""
        values = np.asarray(self._window, dtype=np.float64)
        total = len(values)
        if total < 2 * self.min_cut:
            return None
        prefix = np.cumsum(values)
        log_term = float(np.log(4.0 * total / self.delta))
        for n0 in range(self.min_cut, total - self.min_cut + 1):
            n1 = total - n0
            mean0 = prefix[n0 - 1] / n0
            mean1 = (prefix[-1] - prefix[n0 - 1]) / n1
            m_harmonic = 1.0 / (1.0 / n0 + 1.0 / n1)
            eps = float(np.sqrt(log_term / (2.0 * m_harmonic)))
            if abs(mean0 - mean1) > eps:
                return n0
        return None

    def _update(self, z: float) -> bool:
        value = float(np.clip(z / self.clip_z, 0.0, 1.0))
        self._window.append(value)
        cut = False
        while True:
            n0 = self._cut_point()
            if n0 is None:
                break
            cut = True
            for _ in range(n0):
                self._window.popleft()
        return cut


class KSWINDetector(_ScalarStatDetector):
    """Kolmogorov-Smirnov windowing over the statistic stream.

    Keeps a sliding window of the last ``window`` statistics; once full,
    each frame runs a two-sample KS test of the newest ``stat_size``
    values against the older remainder and declares drift when the exact
    p-value drops below ``alpha``.  The usual random subsample of the old
    region is replaced by the *whole* old region, which removes the one
    source of randomness in the textbook detector.
    """

    def __init__(self, reference: np.ndarray, window: int = 30,
                 stat_size: int = 10, alpha: float = 1e-5,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if stat_size < 2:
            raise ConfigurationError(f"stat_size must be >= 2: {stat_size}")
        if window < 2 * stat_size:
            raise ConfigurationError(
                f"window must be >= 2 * stat_size: {window}")
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1): {alpha}")
        self.window = window
        self.stat_size = stat_size
        self.alpha = alpha
        self._buffer: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()

    def _extra_state(self) -> dict:
        return {"buffer": list(self._buffer)}

    def _load_extra_state(self, state: dict) -> None:
        self._buffer.clear()
        self._buffer.extend(float(v) for v in state["buffer"])

    def _update(self, z: float) -> bool:
        self._buffer.append(float(z))
        if len(self._buffer) < self.window:
            return False
        values = list(self._buffer)
        old = values[:-self.stat_size]
        recent = values[-self.stat_size:]
        result = stats.ks_2samp(recent, old, method="exact")
        return bool(result.pvalue < self.alpha)


class PageHinkleyDetector(_ScalarStatDetector):
    """Page-Hinkley test for a sustained increase in the statistic's mean.

    Accumulates ``m_t = sum(z_i - mean_i - delta)`` against its running
    minimum; drift fires when the excursion ``m_t - min(m)`` exceeds
    ``threshold``.  ``delta`` is the magnitude of change tolerated without
    alarming; the cumulative structure makes the test robust to isolated
    outliers while reacting within a few frames to a level shift.
    """

    def __init__(self, reference: np.ndarray, delta: float = 0.25,
                 threshold: float = 40.0, min_observations: int = 10,
                 embedder: Optional[object] = None) -> None:
        super().__init__(reference, embedder)
        if delta < 0:
            raise ConfigurationError(f"delta must be non-negative: {delta}")
        if threshold <= 0:
            raise ConfigurationError(
                f"threshold must be positive: {threshold}")
        if min_observations < 1:
            raise ConfigurationError(
                f"min_observations must be >= 1: {min_observations}")
        self.delta = delta
        self.threshold = threshold
        self.min_observations = min_observations
        self._n = 0
        self._running_mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def reset(self) -> None:
        super().reset()
        self._n = 0
        self._running_mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def _extra_state(self) -> dict:
        return {"n": self._n, "running_mean": self._running_mean,
                "cumulative": self._cumulative, "minimum": self._minimum}

    def _load_extra_state(self, state: dict) -> None:
        self._n = int(state["n"])
        self._running_mean = float(state["running_mean"])
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])

    def _update(self, z: float) -> bool:
        self._n += 1
        self._running_mean += (z - self._running_mean) / self._n
        self._cumulative += z - self._running_mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._n < self.min_observations:
            return False
        return self._cumulative - self._minimum > self.threshold
