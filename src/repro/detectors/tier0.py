"""Tier-0 drift screening from raw pixel statistics (no VAE, no model).

The runtime kernel's monitoring seam usually carries the paper's VAE+DI
path -- ~3 ms of simulated cost per frame, dominated by the encode.  Most
frames in a stationary stream carry no drift signal, so production drift
stacks put a *screen* in front of the expensive detector: a handful of
numpy-only statistics that cost microseconds and are compared against the
reference sample with rolling z-scores.  This module is that screen:

- :func:`ssim_index` -- a global structural-similarity index between a
  frame and the reference frame (luminance x contrast x structure, the
  standard SSIM form with the windowing collapsed to whole-frame
  moments).  Bounded in ``[0, 1]``, bitwise symmetric, and exactly ``1.0``
  on identical frames.
- :func:`edge_iou` -- intersection-over-union of gradient-magnitude edge
  masks (Sobel for images, central differences for flat latent vectors).
  Bounded in ``[0, 1]``, symmetric, exactly ``1.0`` on identical frames,
  and invariant to a constant brightness offset (a constant shifts no
  gradient).
- brightness (frame mean) and variance, tracked as plain scalars.

:class:`PixelStatMonitor` turns the four statistics into a
:class:`~repro.runtime.protocols.DriftMonitor`: per-statistic baselines
(mean / spread) are calibrated from the reference sample at construction,
every observed frame updates a rolling window per statistic, and the
monitor's *suspicion* is the worst alarm-side z-score across statistics
(similarity statistics alarm on a drop, brightness / variance on any
two-sided deviation).  Sustained suspicion latches a standalone drift
verdict; the cascade layer (:mod:`repro.cascade`) instead reads the
per-frame suspicion to decide when to escalate to a tier-1 detector.

The monitor is fully :class:`~repro.runtime.protocols.Snapshotable` and
its ``observe_batch`` is a frame loop, so batched observation is
definitionally bit-identical to sequential observation and the kernel's
optimistic batched-rollback path applies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    DimensionMismatchError,
    EmptyReferenceError,
)

#: The tracked statistics, in a fixed order (baselines, rolling windows
#: and state dicts are all keyed by these names).
STAT_NAMES: Tuple[str, ...] = ("ssim", "edge_iou", "brightness", "variance")

#: Similarity statistics: drift manifests as a *drop*, so only the
#: negative side of their z-score raises suspicion.
_DROP_STATS = frozenset({"ssim", "edge_iou"})

#: Numerical floor for spans and spreads (avoids division by zero on
#: degenerate constant references).
_FLOOR = 1e-9


def ssim_index(a: np.ndarray, b: np.ndarray) -> float:
    """Global SSIM between two equally-shaped frames, in ``[0, 1]``.

    The standard SSIM form with whole-frame moments (no sliding window):
    ``((2 mu_a mu_b + C1)(2 cov + C2)) / ((mu_a^2 + mu_b^2 + C1)
    (var_a + var_b + C2))`` with ``C1 = (0.01 L)^2``, ``C2 = (0.03 L)^2``
    and ``L`` the combined data range of both frames.  Every term is
    computed symmetrically, so ``ssim_index(a, b) == ssim_index(b, a)``
    bit for bit, and identical frames score exactly ``1.0``.
    """
    x = np.asarray(a, dtype=np.float64).ravel()
    y = np.asarray(b, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise DimensionMismatchError(
            f"ssim_index needs equally-sized frames, got {np.shape(a)} "
            f"vs {np.shape(b)}")
    if x.size == 0:
        raise DimensionMismatchError("ssim_index needs non-empty frames")
    span = max(float(max(x.max(), y.max())) - float(min(x.min(), y.min())),
               _FLOOR)
    c1 = (0.01 * span) ** 2
    c2 = (0.03 * span) ** 2
    mu_x, mu_y = float(x.mean()), float(y.mean())
    dx, dy = x - mu_x, y - mu_y
    var_x, var_y = float((dx * dx).mean()), float((dy * dy).mean())
    cov = float((dx * dy).mean())
    score = (((2.0 * mu_x * mu_y + c1) * (2.0 * cov + c2))
             / ((mu_x * mu_x + mu_y * mu_y + c1) * (var_x + var_y + c2)))
    return float(min(max(score, 0.0), 1.0))


_SOBEL = np.array([[-1.0, 0.0, 1.0],
                   [-2.0, 0.0, 2.0],
                   [-1.0, 0.0, 1.0]])


def gradient_magnitude(frame: np.ndarray) -> np.ndarray:
    """Per-element gradient magnitude of a frame.

    Latent vectors (1-D) use central differences; images (2-D) use the
    3x3 Sobel operator over an edge-padded frame; channel-last images
    (3-D) are collapsed to their channel mean first.  All arithmetic is
    exact on integer-valued frames, so the magnitude -- and every edge
    mask derived from it -- is invariant to a constant integer offset.
    """
    arr = np.asarray(frame, dtype=np.float64)
    if arr.ndim == 3:
        arr = arr.mean(axis=-1)
    if arr.ndim == 1:
        if arr.size < 2:
            return np.zeros_like(arr)
        return np.abs(np.gradient(arr))
    if arr.ndim != 2:
        raise DimensionMismatchError(
            f"gradient_magnitude expects a 1-D, 2-D or 3-D frame, got "
            f"shape {arr.shape}")
    padded = np.pad(arr, 1, mode="edge")
    gx = (padded[:-2, 2:] + 2.0 * padded[1:-1, 2:] + padded[2:, 2:]
          - padded[:-2, :-2] - 2.0 * padded[1:-1, :-2] - padded[2:, :-2])
    gy = (padded[2:, :-2] + 2.0 * padded[2:, 1:-1] + padded[2:, 2:]
          - padded[:-2, :-2] - 2.0 * padded[:-2, 1:-1] - padded[:-2, 2:])
    return np.sqrt(gx * gx + gy * gy)


def edge_mask(frame: np.ndarray, tau: float = 0.25) -> np.ndarray:
    """Boolean edge mask: gradient magnitude ``>= tau * peak``.

    A flat frame (zero peak gradient) has *no* edges -- the mask is empty
    rather than vacuously full.
    """
    if not 0.0 < tau <= 1.0:
        raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
    magnitude = gradient_magnitude(frame)
    peak = float(magnitude.max()) if magnitude.size else 0.0
    if peak <= 0.0:
        return np.zeros(magnitude.shape, dtype=bool)
    return magnitude >= tau * peak


def edge_iou(a: np.ndarray, b: np.ndarray, tau: float = 0.25) -> float:
    """Intersection-over-union of the two frames' edge masks, in
    ``[0, 1]``.  Symmetric, exactly ``1.0`` on identical frames, and
    ``1.0`` when both frames are flat (two edgeless frames agree)."""
    mask_a, mask_b = edge_mask(a, tau), edge_mask(b, tau)
    if mask_a.shape != mask_b.shape:
        raise DimensionMismatchError(
            f"edge_iou needs equally-shaped frames, got {np.shape(a)} "
            f"vs {np.shape(b)}")
    union = int(np.logical_or(mask_a, mask_b).sum())
    if union == 0:
        return 1.0
    intersection = int(np.logical_and(mask_a, mask_b).sum())
    return intersection / union


@dataclass(frozen=True)
class Tier0Decision:
    """One observed frame's screen verdict.

    ``drift`` is the latched standalone verdict (the
    :class:`~repro.runtime.protocols.DriftMonitor` contract);
    ``suspicion`` is the worst alarm-side rolling z-score across the
    statistics, in reference-sigma units -- the cascade's escalation
    signal; ``zscores`` carries the per-statistic scores for diagnostics.
    """

    drift: bool
    suspicion: float
    zscores: Dict[str, float]


class PixelStatMonitor:
    """Screen frames with rolling z-scores of cheap pixel statistics.

    Parameters
    ----------
    reference:
        The deployed bundle's reference sample, shape ``(N >= 5, ...)``
        (one frame per row).  The row mean is the reference frame the
        similarity statistics compare against, and the per-row statistic
        distribution calibrates each statistic's baseline mean / spread.
    smoothing:
        Rolling-window length per statistic.  The z-score of a window of
        ``n`` observations uses the standard-error scale
        ``sigma / sqrt(n)``, so suspicion is comparable while the window
        fills.
    drift_z / drift_confirm:
        The standalone latch: suspicion at or above ``drift_z`` for
        ``drift_confirm`` consecutive frames latches ``drift_detected``
        (cleared only by :meth:`reset`).  The cascade keeps these at
        their conservative defaults and acts on ``suspicion`` instead.
    """

    def __init__(self, reference: np.ndarray, smoothing: int = 8,
                 drift_z: float = 6.0, drift_confirm: int = 2) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        if ref.ndim < 2 or ref.shape[0] < 5:
            raise EmptyReferenceError(
                f"reference must be (N>=5, ...), got {ref.shape}")
        if smoothing < 1:
            raise ConfigurationError(f"smoothing must be >= 1: {smoothing}")
        if drift_z <= 0:
            raise ConfigurationError(f"drift_z must be positive: {drift_z}")
        if drift_confirm < 1:
            raise ConfigurationError(
                f"drift_confirm must be >= 1: {drift_confirm}")
        self.smoothing = int(smoothing)
        self.drift_z = float(drift_z)
        self.drift_confirm = int(drift_confirm)
        self.reference_frame = ref.mean(axis=0)
        samples: Dict[str, list] = {name: [] for name in STAT_NAMES}
        for row in ref:
            for name, value in self._stats(row).items():
                samples[name].append(value)
        self._mu = {name: float(np.mean(values))
                    for name, values in samples.items()}
        self._sigma = {name: float(max(np.std(values), _FLOOR))
                       for name, values in samples.items()}
        self._windows: Dict[str, Deque[float]] = {
            name: deque(maxlen=self.smoothing) for name in STAT_NAMES}
        self._streak = 0
        self._frame_index = 0
        self._drift_frame: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def drift_detected(self) -> bool:
        return self._drift_frame is not None

    @property
    def drift_frame(self) -> Optional[int]:
        return self._drift_frame

    @property
    def frames_seen(self) -> int:
        return self._frame_index

    # ------------------------------------------------------------------
    def _stats(self, frame: np.ndarray) -> Dict[str, float]:
        arr = np.asarray(frame, dtype=np.float64)
        return {
            "ssim": ssim_index(arr, self.reference_frame),
            "edge_iou": edge_iou(arr, self.reference_frame),
            "brightness": float(arr.mean()),
            "variance": float(arr.var()),
        }

    @staticmethod
    def _suspicion_of(zscores: Dict[str, float]) -> float:
        return float(max(
            max(0.0, -score) if name in _DROP_STATS else abs(score)
            for name, score in zscores.items()))

    def peek_suspicion(self, frame: np.ndarray) -> float:
        """Single-frame suspicion with *no* state touched: the z-score of
        the frame's statistics against the calibrated baselines.  The
        serving layer's degraded pass uses this to keep screening frames
        it will not run the full monitor on."""
        stats = self._stats(frame)
        zscores = {name: (stats[name] - self._mu[name]) / self._sigma[name]
                   for name in STAT_NAMES}
        return self._suspicion_of(zscores)

    # ------------------------------------------------------------------
    def observe(self, pixels: np.ndarray) -> Tier0Decision:
        stats = self._stats(pixels)
        zscores: Dict[str, float] = {}
        for name in STAT_NAMES:
            window = self._windows[name]
            window.append(stats[name])
            scale = self._sigma[name] / float(np.sqrt(len(window)))
            zscores[name] = (float(np.mean(window)) - self._mu[name]) / scale
        suspicion = self._suspicion_of(zscores)
        if suspicion >= self.drift_z:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.drift_confirm and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self._frame_index += 1
        return Tier0Decision(drift=self.drift_detected, suspicion=suspicion,
                             zscores=zscores)

    def observe_batch(self, frames: np.ndarray) -> list:
        """Observe a ``(B, ...)`` stack frame by frame.

        The loop *is* the implementation, so batched observation is
        definitionally bit-identical to sequential observation; combined
        with :meth:`state_dict` it qualifies the screen for the kernel's
        optimistic batched-rollback path.
        """
        arr = np.asarray(frames)
        if arr.ndim == np.ndim(self.reference_frame):
            arr = arr[None, ...]
        return [self.observe(frame) for frame in arr]

    def reset(self) -> None:
        """Re-arm against the current reference (the
        :class:`~repro.runtime.protocols.DriftMonitor` contract)."""
        for window in self._windows.values():
            window.clear()
        self._streak = 0
        self._frame_index = 0
        self._drift_frame = None

    # ------------------------------------------------------------------
    # Snapshotable: dynamic state only (baselines are configuration,
    # rebuilt from the deployed bundle on restore)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "frame_index": self._frame_index,
            "drift_frame": self._drift_frame,
            "streak": self._streak,
            "windows": {name: list(window)
                        for name, window in self._windows.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        self._frame_index = int(state["frame_index"])
        drift_frame = state["drift_frame"]
        self._drift_frame = None if drift_frame is None else int(drift_frame)
        self._streak = int(state["streak"])
        for name in STAT_NAMES:
            self._windows[name].clear()
            self._windows[name].extend(
                float(value) for value in state["windows"][name])
