"""Reproduction of "Coping With Data Drift in Online Video Analytics" (EDBT 2025).

The package provides:

- :mod:`repro.core` -- the paper's primary contribution: the Drift Inspector
  (DI) conformal-martingale drift detector and the MSBI / MSBO model-selection
  algorithms, plus the end-to-end drift-aware analytics pipeline (Figure 1).
- :mod:`repro.runtime` -- the Figure-1 loop as a staged kernel (admission ->
  monitoring -> adaptation -> emission) behind the pipeline façade, with the
  ``DriftMonitor`` / ``Snapshotable`` protocols every substrate builds on.
- :mod:`repro.nn` -- a from-scratch numpy deep-learning substrate (dense and
  convolutional layers, VAE, softmax classifiers, deep ensembles).
- :mod:`repro.video` -- a synthetic video substrate standing in for the
  BDD / Detrac / Tokyo datasets used in the paper.
- :mod:`repro.detectors` -- drift-oblivious object-detector substitutes
  (Mask R-CNN / YOLOv7 equivalents) and per-distribution query models.
- :mod:`repro.baselines` -- the ODIN baseline (Detect / Select / Specialize)
  and classical statistical change detectors.
- :mod:`repro.queries` -- count and spatial-constrained video queries.
- :mod:`repro.sim` -- the simulated clock and paper-calibrated cost profiles.
- :mod:`repro.experiments` -- one module per paper table / figure.
"""

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.monitor import FleetConfig, FleetMonitor
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry, NovelDistribution
from repro.runtime import DriftMonitor, RuntimeKernel, Snapshotable

__version__ = "1.0.0"

__all__ = [
    "DriftInspector",
    "DriftInspectorConfig",
    "DriftAwareAnalytics",
    "PipelineConfig",
    "RuntimeKernel",
    "DriftMonitor",
    "Snapshotable",
    "FleetMonitor",
    "FleetConfig",
    "MSBI",
    "MSBIConfig",
    "MSBO",
    "MSBOConfig",
    "ModelBundle",
    "ModelRegistry",
    "NovelDistribution",
    "__version__",
]
